//! The scenario grid: the cross-product of sweep axes, resolved into
//! concrete scenarios and cells.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use teg_device::VariationModel;
use teg_reconfig::SchemeSpec;
use teg_units::KernelMode;

use crate::error::SimError;
use crate::fault::{FaultPlan, FaultSeverity};
use crate::scenario::Scenario;
use crate::trace_cache::{ThermalKey, TraceCache};

/// Whether a label/name may appear inside a compact grid spec: the spec
/// grammar reserves `|` `,` `=` between fields, `:` and `+` inside tokens,
/// and whitespace for readability.
pub(crate) fn label_is_spec_safe(label: &str) -> bool {
    !label.is_empty()
        && label
            .chars()
            .all(|c| !c.is_whitespace() && !matches!(c, '|' | ',' | '=' | ':' | '+'))
}

/// The compact token of a [`FaultSeverity`]: a named preset when the rates
/// match one, raw `<module>/<switch>/<sensor>` rates otherwise (`f64`
/// `Display` round-trips exactly).
fn severity_token(severity: FaultSeverity) -> String {
    for (name, preset) in [
        ("light", FaultSeverity::light()),
        ("moderate", FaultSeverity::moderate()),
        ("severe", FaultSeverity::severe()),
    ] {
        if severity == preset {
            return name.to_owned();
        }
    }
    format!(
        "{}/{}/{}",
        severity.module_rate(),
        severity.switch_rate(),
        severity.sensor_rate()
    )
}

fn parse_severity(token: &str) -> Option<FaultSeverity> {
    match token {
        "light" => return Some(FaultSeverity::light()),
        "moderate" => return Some(FaultSeverity::moderate()),
        "severe" => return Some(FaultSeverity::severe()),
        _ => {}
    }
    let mut rates = token.split('/');
    let module: f64 = rates.next()?.parse().ok()?;
    let switch: f64 = rates.next()?.parse().ok()?;
    let sensor: f64 = rates.next()?.parse().ok()?;
    if rates.next().is_some() {
        return None;
    }
    FaultSeverity::new(module, switch, sensor).ok()
}

/// One drive-cycle variant of the sweep: a label plus the parameters fed to
/// the scenario builder.
///
/// The synthetic drive generator is parameterised by duration and seed; the
/// seed is a separate grid axis, so a profile is the duration with a
/// human-readable label that ends up in every [`CellKey`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DriveProfile {
    label: String,
    duration_seconds: usize,
}

impl DriveProfile {
    /// A profile of the given duration, labelled `"{duration}s"`.
    #[must_use]
    pub fn seconds(duration_seconds: usize) -> Self {
        Self {
            label: format!("{duration_seconds}s"),
            duration_seconds,
        }
    }

    /// A profile with an explicit label (e.g. `"city"`, `"highway"`).
    #[must_use]
    pub fn named(label: impl Into<String>, duration_seconds: usize) -> Self {
        Self {
            label: label.into(),
            duration_seconds,
        }
    }

    /// The paper's 800-second evaluation drive.
    #[must_use]
    pub fn paper_800s() -> Self {
        Self::named("porter-ii-800s", 800)
    }

    /// The label recorded in every cell key using this profile.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Drive duration in seconds (1 Hz sampling).
    #[must_use]
    pub const fn duration_seconds(&self) -> usize {
        self.duration_seconds
    }

    /// The compact token this profile serialises to — `<label>:<seconds>`,
    /// round-tripped by [`DriveProfile::parse`].  `None` when the label
    /// contains characters the spec grammar reserves.
    #[must_use]
    pub fn spec(&self) -> Option<String> {
        label_is_spec_safe(&self.label).then(|| format!("{}:{}", self.label, self.duration_seconds))
    }

    /// Parses a `<label>:<seconds>` token back into a profile.  Returns
    /// `None` for malformed tokens (missing separator, unparsable or zero
    /// duration, reserved characters in the label).
    #[must_use]
    pub fn parse(token: &str) -> Option<Self> {
        let (label, seconds) = token.split_once(':')?;
        let duration_seconds: usize = seconds.parse().ok()?;
        if duration_seconds == 0 || !label_is_spec_safe(label) {
            return None;
        }
        Some(Self::named(label, duration_seconds))
    }
}

/// A named field of schemes competing in one cell, parameterised by the
/// cell's module count (the static baseline's wiring depends on it).
///
/// Lineups hold [`SchemeSpec`] factories rather than scheme instances, so a
/// sweep can mint fresh, independent instances for every cell on whatever
/// worker thread picks it up.
#[derive(Clone)]
pub struct SchemeLineup {
    name: String,
    spec: Option<String>,
    factory: Arc<dyn Fn(usize) -> Vec<SchemeSpec> + Send + Sync>,
}

impl SchemeLineup {
    /// The paper's Table I field: DNOR, INOR, EHTR and the square-grid
    /// baseline sized for each cell's module count.
    #[must_use]
    pub fn paper() -> Self {
        Self::parameterised("paper", SchemeSpec::paper_field).tagged("paper".into())
    }

    /// The paper's Table I field in its bit-reproducible form: DNOR charges
    /// the fixed `computation` time instead of its own wall clock, so a
    /// sweep under `RuntimePolicy::Fixed(computation)` reproduces
    /// bit-identically for any worker count — the lineup the golden-trace
    /// snapshots pin down.
    #[must_use]
    pub fn paper_fixed(computation: teg_units::Seconds) -> Self {
        Self::parameterised("paper-fixed", move |n| {
            SchemeSpec::paper_field_fixed(n, computation)
        })
        .tagged(format!("paper-fixed:{}", computation.value()))
    }

    /// A lineup with a fixed set of specs, identical for every module count.
    #[must_use]
    pub fn fixed(name: impl Into<String>, specs: Vec<SchemeSpec>) -> Self {
        let name = name.into();
        let spec = (label_is_spec_safe(&name))
            .then(|| {
                specs
                    .iter()
                    .map(|s| s.spec().map(str::to_owned))
                    .collect::<Option<Vec<_>>>()
            })
            .flatten()
            .map(|tokens| format!("fixed:{name}:{}", tokens.join("+")));
        Self {
            name,
            spec,
            factory: Arc::new(move |_| specs.clone()),
        }
    }

    /// A lineup whose specs are derived from the cell's module count.
    pub fn parameterised<F>(name: impl Into<String>, factory: F) -> Self
    where
        F: Fn(usize) -> Vec<SchemeSpec> + Send + Sync + 'static,
    {
        Self {
            name: name.into(),
            spec: None,
            factory: Arc::new(factory),
        }
    }

    fn tagged(mut self, spec: String) -> Self {
        self.spec = Some(spec);
        self
    }

    /// The lineup's name, recorded in every cell key using it.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compact token this lineup serialises to, when it was built from
    /// one of the named presets or from [`SchemeLineup::fixed`] over
    /// preset-token schemes ([`SchemeLineup::parse`] round-trips it).
    /// Lineups over arbitrary constructors have no token and return `None`.
    #[must_use]
    pub fn spec(&self) -> Option<&str> {
        self.spec.as_deref()
    }

    /// Parses a lineup token back into the lineup that emitted it:
    /// `paper`, `paper-fixed:<seconds>`, or `fixed:<name>:<tok>+<tok>+…`
    /// where each `tok` follows the [`SchemeSpec::parse`] grammar — plus the
    /// bare token `baseline`, which fields the square-grid baseline sized
    /// for each cell's module count.  Returns `None` for unknown tokens or
    /// malformed parameters.
    #[must_use]
    pub fn parse(token: &str) -> Option<Self> {
        if token == "paper" {
            return Some(Self::paper());
        }
        if let Some(value) = token.strip_prefix("paper-fixed:") {
            let seconds: f64 = value.parse().ok()?;
            if !(seconds.is_finite() && seconds >= 0.0) {
                return None;
            }
            return Some(Self::paper_fixed(teg_units::Seconds::new(seconds)));
        }
        let rest = token.strip_prefix("fixed:")?;
        let (name, tokens) = rest.split_once(':')?;
        if !label_is_spec_safe(name) {
            return None;
        }
        let tokens: Vec<String> = tokens.split('+').map(str::to_owned).collect();
        for tok in &tokens {
            if tok != "baseline" && SchemeSpec::parse(tok).is_none() {
                return None;
            }
        }
        let canonical = format!("fixed:{name}:{}", tokens.join("+"));
        let field = tokens.clone();
        Some(
            Self::parameterised(name, move |module_count| {
                field
                    .iter()
                    .map(|tok| {
                        if tok == "baseline" {
                            SchemeSpec::baseline_square_grid(module_count)
                        } else {
                            SchemeSpec::parse(tok).expect("tokens validated at parse time")
                        }
                    })
                    .collect()
            })
            .tagged(canonical),
        )
    }

    /// The specs this lineup fields for an array of `module_count` modules.
    #[must_use]
    pub fn specs(&self, module_count: usize) -> Vec<SchemeSpec> {
        (self.factory)(module_count)
    }
}

impl fmt::Debug for SchemeLineup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchemeLineup")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

/// One degradation variant of the sweep: a label plus the recipe producing a
/// [`FaultPlan`] for each cell's array size, drive length and seed.
///
/// Like [`SchemeLineup`], profiles hold a factory rather than a plan, so one
/// profile spans cells of different module counts — a "severe" profile
/// faults ~30 % of the plant whether the cell has 10 modules or 1000.
#[derive(Clone)]
pub struct FaultProfile {
    label: String,
    spec: Option<String>,
    recipe: Arc<dyn Fn(usize, usize, u64) -> FaultPlan + Send + Sync>,
}

impl FaultProfile {
    /// The healthy profile: every cell runs without faults (the default
    /// fault axis).
    #[must_use]
    pub fn none() -> Self {
        Self::parameterised("healthy", |_, _, _| FaultPlan::none()).tagged("healthy".into())
    }

    /// A profile replaying one fixed plan in every cell (the plan must be
    /// valid for every module count on the grid's axis).
    #[must_use]
    pub fn fixed(label: impl Into<String>, plan: FaultPlan) -> Self {
        let label = label.into();
        let spec = label_is_spec_safe(&label)
            .then(|| format!("fixed:{label}:{}:{}", plan.sensor_seed(), plan.spec()));
        Self {
            label,
            spec,
            recipe: Arc::new(move |_, _, _| plan.clone()),
        }
    }

    /// A profile generating a seeded [`FaultPlan::random`] of the given
    /// severity per cell, deterministic in the cell's (module count,
    /// duration, seed) coordinates.
    #[must_use]
    pub fn random(label: impl Into<String>, severity: FaultSeverity) -> Self {
        let label = label.into();
        let spec = label_is_spec_safe(&label)
            .then(|| format!("random:{label}:{}", severity_token(severity)));
        let mut profile = Self::parameterised(label, move |modules, duration, seed| {
            FaultPlan::random(modules, duration, severity, seed)
        });
        profile.spec = spec;
        profile
    }

    /// A profile with an arbitrary `(module_count, duration_steps, seed) →
    /// FaultPlan` recipe.
    pub fn parameterised<F>(label: impl Into<String>, recipe: F) -> Self
    where
        F: Fn(usize, usize, u64) -> FaultPlan + Send + Sync + 'static,
    {
        Self {
            label: label.into(),
            spec: None,
            recipe: Arc::new(recipe),
        }
    }

    fn tagged(mut self, spec: String) -> Self {
        self.spec = Some(spec);
        self
    }

    /// The label recorded in every cell key using this profile.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The compact token this profile serialises to, when it was built from
    /// [`FaultProfile::none`], [`FaultProfile::fixed`] or
    /// [`FaultProfile::random`] ([`FaultProfile::parse`] round-trips it).
    /// Profiles over arbitrary recipes have no token and return `None`.
    #[must_use]
    pub fn spec(&self) -> Option<&str> {
        self.spec.as_deref()
    }

    /// Parses a fault-profile token back into the profile that emitted it:
    /// `healthy`, `random:<label>:<severity>` (severity one of `light`,
    /// `moderate`, `severe` or raw `<module>/<switch>/<sensor>` rates) or
    /// `fixed:<label>:<sensor_seed>:<plan spec>` with the plan in
    /// [`FaultPlan::spec`] grammar.  Returns `None` for unknown tokens or
    /// malformed parameters.
    #[must_use]
    pub fn parse(token: &str) -> Option<Self> {
        if token == "healthy" {
            return Some(Self::none());
        }
        if let Some(rest) = token.strip_prefix("random:") {
            let (label, severity) = rest.split_once(':')?;
            if !label_is_spec_safe(label) {
                return None;
            }
            return Some(Self::random(label, parse_severity(severity)?));
        }
        let rest = token.strip_prefix("fixed:")?;
        let (label, rest) = rest.split_once(':')?;
        let (sensor_seed, plan_spec) = rest.split_once(':')?;
        if !label_is_spec_safe(label) {
            return None;
        }
        let sensor_seed: u64 = sensor_seed.parse().ok()?;
        let plan = FaultPlan::parse_spec(plan_spec)
            .ok()?
            .with_sensor_seed(sensor_seed);
        Some(Self::fixed(label, plan))
    }

    /// The plan this profile produces for one cell's coordinates.
    #[must_use]
    pub fn plan(&self, module_count: usize, duration_steps: usize, seed: u64) -> FaultPlan {
        (self.recipe)(module_count, duration_steps, seed)
    }
}

impl fmt::Debug for FaultProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultProfile")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

/// The coordinates of one sweep cell — everything needed to tell results
/// apart in a [`SweepReport`](crate::SweepReport).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellKey {
    index: usize,
    module_count: usize,
    seed: u64,
    drive: String,
    variation: usize,
    fault: String,
    lineup: String,
}

impl CellKey {
    /// Reassembles a key from its raw coordinates — the inverse of reading
    /// the accessors off an existing key.  Wire codecs use this to
    /// reconstruct streamed cell reports; within one process, keys come from
    /// [`ScenarioGridBuilder::build`].
    #[must_use]
    pub fn from_parts(
        index: usize,
        module_count: usize,
        seed: u64,
        drive: impl Into<String>,
        variation: usize,
        fault: impl Into<String>,
        lineup: impl Into<String>,
    ) -> Self {
        Self {
            index,
            module_count,
            seed,
            drive: drive.into(),
            variation,
            fault: fault.into(),
            lineup: lineup.into(),
        }
    }

    /// Position of the cell in grid order (the order reports are listed in).
    #[must_use]
    pub const fn index(&self) -> usize {
        self.index
    }

    /// Number of modules in the cell's array.
    #[must_use]
    pub const fn module_count(&self) -> usize {
        self.module_count
    }

    /// The drive-cycle RNG seed.
    #[must_use]
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// Label of the cell's [`DriveProfile`].
    #[must_use]
    pub fn drive(&self) -> &str {
        &self.drive
    }

    /// Index of the cell's variation model within the grid's variation axis.
    #[must_use]
    pub const fn variation(&self) -> usize {
        self.variation
    }

    /// Label of the cell's [`FaultProfile`].
    #[must_use]
    pub fn fault(&self) -> &str {
        &self.fault
    }

    /// Name of the cell's [`SchemeLineup`].
    #[must_use]
    pub fn lineup(&self) -> &str {
        &self.lineup
    }
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {}mod seed{} {} {} {}",
            self.index, self.module_count, self.seed, self.drive, self.fault, self.lineup
        )
    }
}

/// One unit of sweep work: a scenario sample paired with a scheme lineup.
#[derive(Debug, Clone)]
pub struct SweepCell {
    key: CellKey,
    sample_index: usize,
    lineup_index: usize,
}

impl SweepCell {
    /// The cell's coordinates.
    #[must_use]
    pub const fn key(&self) -> &CellKey {
        &self.key
    }

    /// Index of the cell's scenario sample within
    /// [`ScenarioGrid::samples`].
    #[must_use]
    pub const fn sample_index(&self) -> usize {
        self.sample_index
    }

    /// Index of the cell's lineup within [`ScenarioGrid::lineups`].
    #[must_use]
    pub const fn lineup_index(&self) -> usize {
        self.lineup_index
    }
}

/// The resolved cross-product of sweep axes: one [`Scenario`] per distinct
/// parameter sample, and one [`SweepCell`] per sample × lineup.
///
/// Cells that differ only in their lineup reference the *same* scenario
/// sample, so its thermal trace is solved once however many lineups (and
/// workers) replay it.  On top of that, the grid attaches one shared
/// [`TraceCache`] to every sample (unless built with
/// [`ScenarioGridBuilder::isolated_traces`]), so *samples* whose thermal
/// inputs are bit-identical — typically the fault-profile variants of one
/// (module count, seed, drive) coordinate — also share a single radiator
/// solve.  The grid is `Sync`: workers share it by reference.
#[derive(Debug)]
pub struct ScenarioGrid {
    samples: Vec<Scenario>,
    lineups: Vec<SchemeLineup>,
    cells: Vec<SweepCell>,
    trace_cache: Option<TraceCache>,
    expected_thermal_solves: usize,
    kernel_mode: KernelMode,
}

impl ScenarioGrid {
    /// Starts a builder with the paper's defaults on every axis (100
    /// modules, seed 0, the 800-second drive, no variation, the Table I
    /// lineup).
    #[must_use]
    pub fn builder() -> ScenarioGridBuilder {
        ScenarioGridBuilder::new()
    }

    /// Number of cells (scenario samples × lineups).
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the grid has no cells (never produced by the builder,
    /// which rejects empty axes).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cells in grid order.
    #[must_use]
    pub fn cells(&self) -> &[SweepCell] {
        &self.cells
    }

    /// The distinct scenario samples, in axis order.
    #[must_use]
    pub fn samples(&self) -> &[Scenario] {
        &self.samples
    }

    /// The scheme lineups, in insertion order.
    #[must_use]
    pub fn lineups(&self) -> &[SchemeLineup] {
        &self.lineups
    }

    /// The scenario a cell replays.
    #[must_use]
    pub fn scenario(&self, cell: &SweepCell) -> &Scenario {
        &self.samples[cell.sample_index]
    }

    /// The lineup a cell fields.
    #[must_use]
    pub fn lineup(&self, cell: &SweepCell) -> &SchemeLineup {
        &self.lineups[cell.lineup_index]
    }

    /// Radiator solves performed through this grid's scenarios so far —
    /// after a sweep, exactly [`ScenarioGrid::expected_thermal_solves`] when
    /// the trace caches held: one solve per drive-cycle second of each
    /// *unique thermal key*, however many samples, cells and workers shared
    /// it.  With an externally pre-warmed cache
    /// ([`ScenarioGridBuilder::trace_cache`]) the count can be lower still:
    /// keys already solved by an earlier grid cost this grid nothing.
    #[must_use]
    pub fn thermal_solve_count(&self) -> usize {
        self.samples.iter().map(Scenario::thermal_solve_count).sum()
    }

    /// The solve budget a sweep costs *from a cold cache*: one radiator
    /// solve per drive-cycle second of each *unique thermal key* on the
    /// grid (samples that differ only by fault profile — or any other axis
    /// that never reaches the radiator — share a key).  With
    /// [`ScenarioGridBuilder::isolated_traces`] every sample is its own
    /// key, restoring the historical one-solve-per-sample count.  A grid
    /// sharing an external, already-warm cache performs *at most* this many
    /// solves — [`ScenarioGrid::thermal_solve_count`] then reports only the
    /// keys this grid solved first.
    #[must_use]
    pub const fn expected_thermal_solves(&self) -> usize {
        self.expected_thermal_solves
    }

    /// The cross-sample trace cache attached to this grid's scenarios, if
    /// sharing is enabled (the default).
    #[must_use]
    pub const fn trace_cache(&self) -> Option<&TraceCache> {
        self.trace_cache.as_ref()
    }

    /// The [`KernelMode`] every scenario on the grid runs its kernels in.
    #[must_use]
    pub const fn kernel_mode(&self) -> KernelMode {
        self.kernel_mode
    }

    /// Indices into [`ScenarioGrid::samples`] of the first sample carrying
    /// each distinct thermal key — the set a pre-solve planner must solve to
    /// warm the whole grid.  With trace sharing disabled
    /// ([`ScenarioGridBuilder::isolated_traces`]) every sample is its own
    /// key, so every sample index is returned.
    #[must_use]
    pub fn unique_sample_indices(&self) -> Vec<usize> {
        self.unique_sample_indices_for(&self.cells)
    }

    /// Like [`ScenarioGrid::unique_sample_indices`], restricted to the
    /// samples the given cells reference — e.g. the cells a
    /// checkpoint-resumed sweep still has to run.  Order follows the cells'
    /// first references, so the result is deterministic for a given cell
    /// order.
    #[must_use]
    pub fn unique_sample_indices_for<'a>(
        &self,
        cells: impl IntoIterator<Item = &'a SweepCell>,
    ) -> Vec<usize> {
        let mut seen = vec![false; self.samples.len()];
        let mut referenced = Vec::new();
        for cell in cells {
            if !seen[cell.sample_index] {
                seen[cell.sample_index] = true;
                referenced.push(cell.sample_index);
            }
        }
        if self.trace_cache.is_none() {
            // Isolated traces: nothing dedupes, each sample solves its own.
            return referenced;
        }
        let mut unique: Vec<ThermalKey> = Vec::new();
        let mut indices = Vec::new();
        for index in referenced {
            let key = ThermalKey::of(&self.samples[index]);
            if !unique.contains(&key) {
                unique.push(key);
                indices.push(index);
            }
        }
        indices
    }
}

/// Builder for [`ScenarioGrid`] values; every axis defaults to the paper's
/// single value.
#[derive(Debug, Clone)]
pub struct ScenarioGridBuilder {
    module_counts: Vec<usize>,
    seeds: Vec<u64>,
    drives: Vec<DriveProfile>,
    variations: Vec<VariationModel>,
    faults: Vec<FaultProfile>,
    lineups: Vec<SchemeLineup>,
    trace_cache: Option<TraceCache>,
    share_traces: bool,
    kernel_mode: KernelMode,
}

impl ScenarioGridBuilder {
    /// Creates a builder with the paper's defaults on every axis.
    #[must_use]
    pub fn new() -> Self {
        Self {
            module_counts: vec![100],
            seeds: vec![0],
            drives: vec![DriveProfile::paper_800s()],
            variations: vec![VariationModel::none()],
            faults: vec![FaultProfile::none()],
            lineups: vec![SchemeLineup::paper()],
            trace_cache: None,
            share_traces: true,
            kernel_mode: KernelMode::BitExact,
        }
    }

    /// Replaces the module-count axis.
    #[must_use]
    pub fn module_counts(mut self, counts: impl IntoIterator<Item = usize>) -> Self {
        self.module_counts = counts.into_iter().collect();
        self
    }

    /// Replaces the drive-cycle seed axis.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Replaces the drive-profile axis.
    #[must_use]
    pub fn drives(mut self, drives: impl IntoIterator<Item = DriveProfile>) -> Self {
        self.drives = drives.into_iter().collect();
        self
    }

    /// Shorthand for a single unnamed drive profile of the given duration.
    #[must_use]
    pub fn duration_seconds(self, duration_seconds: usize) -> Self {
        self.drives([DriveProfile::seconds(duration_seconds)])
    }

    /// Replaces the module-variation axis.
    #[must_use]
    pub fn variations(mut self, variations: impl IntoIterator<Item = VariationModel>) -> Self {
        self.variations = variations.into_iter().collect();
        self
    }

    /// Replaces the fault axis: each profile produces one degradation
    /// variant of every scenario sample (the default axis is the single
    /// healthy profile).
    #[must_use]
    pub fn faults(mut self, faults: impl IntoIterator<Item = FaultProfile>) -> Self {
        self.faults = faults.into_iter().collect();
        self
    }

    /// Replaces the scheme-lineup axis.
    #[must_use]
    pub fn lineups(mut self, lineups: impl IntoIterator<Item = SchemeLineup>) -> Self {
        self.lineups = lineups.into_iter().collect();
        self
    }

    /// Shares thermal traces through an *external* [`TraceCache`] instead
    /// of the fresh per-grid cache the builder creates by default — the hook
    /// for threading one cache through many grids (repeated sweeps over
    /// overlapping parameter spaces pay each unique radiator solve once,
    /// ever).
    #[must_use]
    pub fn trace_cache(mut self, cache: TraceCache) -> Self {
        self.trace_cache = Some(cache);
        self.share_traces = true;
        self
    }

    /// Selects the [`KernelMode`] for every scenario on the grid (default
    /// [`KernelMode::BitExact`]).  The mode flows through each sample into
    /// every session the sweep runs — scheme, solver and sensor kernels —
    /// and into the thermal-trace cache key, so fast and bit-exact grids
    /// sharing an external cache never alias.
    #[must_use]
    pub const fn kernel_mode(mut self, mode: KernelMode) -> Self {
        self.kernel_mode = mode;
        self
    }

    /// Disables cross-sample trace sharing: every sample solves its own
    /// thermal trace, as earlier revisions did.  Useful for benchmarking the
    /// cache itself; the per-sample (cells × lineups) sharing is unaffected.
    #[must_use]
    pub fn isolated_traces(mut self) -> Self {
        self.trace_cache = None;
        self.share_traces = false;
        self
    }

    /// Resolves the cross-product: builds one scenario per distinct
    /// (module count, seed, drive, variation) sample and one cell per
    /// sample × lineup.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidScenario`] when any axis is empty, when a
    /// lineup fields no scheme or two schemes with the same name for some
    /// module count, and propagates scenario-construction errors.
    pub fn build(self) -> Result<ScenarioGrid, SimError> {
        for (axis, len) in [
            ("module_counts", self.module_counts.len()),
            ("seeds", self.seeds.len()),
            ("drives", self.drives.len()),
            ("variations", self.variations.len()),
            ("faults", self.faults.len()),
            ("lineups", self.lineups.len()),
        ] {
            if len == 0 {
                return Err(SimError::InvalidScenario {
                    reason: format!("scenario grid axis {axis:?} is empty"),
                });
            }
        }
        // Lineup validation up front: failing at build time beats failing
        // halfway through a long parallel run.
        for lineup in &self.lineups {
            for &module_count in &self.module_counts {
                let specs = lineup.specs(module_count);
                if specs.is_empty() {
                    return Err(SimError::InvalidScenario {
                        reason: format!(
                            "lineup {:?} fields no scheme for {module_count} modules",
                            lineup.name()
                        ),
                    });
                }
                let mut names = HashSet::new();
                for spec in &specs {
                    if !names.insert(spec.name().to_owned()) {
                        return Err(SimError::InvalidScenario {
                            reason: format!(
                                "lineup {:?} fields scheme {:?} twice for {module_count} \
                                 modules; per-name report lookup would be ambiguous",
                                lineup.name(),
                                spec.name()
                            ),
                        });
                    }
                }
            }
        }

        let trace_cache = self
            .share_traces
            .then(|| self.trace_cache.unwrap_or_default());
        let mut samples = Vec::new();
        let mut sample_coords = Vec::new();
        for &module_count in &self.module_counts {
            for &seed in &self.seeds {
                for drive in &self.drives {
                    for (variation_index, &variation) in self.variations.iter().enumerate() {
                        for fault in &self.faults {
                            let mut builder = Scenario::builder()
                                .module_count(module_count)
                                .duration_seconds(drive.duration_seconds())
                                .seed(seed)
                                .kernel_mode(self.kernel_mode)
                                .module_variation(variation)
                                .fault_plan(fault.plan(
                                    module_count,
                                    drive.duration_seconds(),
                                    seed,
                                ));
                            if let Some(cache) = &trace_cache {
                                builder = builder.trace_cache(cache.clone());
                            }
                            samples.push(builder.build()?);
                            sample_coords.push((
                                module_count,
                                seed,
                                drive.label().to_owned(),
                                variation_index,
                                fault.label().to_owned(),
                            ));
                        }
                    }
                }
            }
        }

        // The solve budget a sweep should cost: with sharing on, one solve
        // per drive-cycle second of each *unique thermal key*; isolated,
        // one per sample.  Computed here so tests and benches can assert the
        // reduction without re-deriving the keys.
        let expected_thermal_solves = if trace_cache.is_some() {
            let mut unique: Vec<ThermalKey> = Vec::new();
            let mut expected = 0;
            for sample in &samples {
                let key = ThermalKey::of(sample);
                if !unique.contains(&key) {
                    expected += sample.drive_cycle().len();
                    unique.push(key);
                }
            }
            expected
        } else {
            samples.iter().map(|s| s.drive_cycle().len()).sum()
        };

        let mut cells = Vec::with_capacity(samples.len() * self.lineups.len());
        for (sample_index, (module_count, seed, drive, variation, fault)) in
            sample_coords.into_iter().enumerate()
        {
            for (lineup_index, lineup) in self.lineups.iter().enumerate() {
                cells.push(SweepCell {
                    key: CellKey {
                        index: cells.len(),
                        module_count,
                        seed,
                        drive: drive.clone(),
                        variation,
                        fault: fault.clone(),
                        lineup: lineup.name().to_owned(),
                    },
                    sample_index,
                    lineup_index,
                });
            }
        }

        Ok(ScenarioGrid {
            samples,
            lineups: self.lineups,
            cells,
            trace_cache,
            expected_thermal_solves,
            kernel_mode: self.kernel_mode,
        })
    }
}

impl Default for ScenarioGridBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_the_cross_product_of_its_axes() {
        let grid = ScenarioGrid::builder()
            .module_counts([6, 9, 12])
            .seeds([1, 2])
            .duration_seconds(10)
            .lineups([
                SchemeLineup::paper(),
                SchemeLineup::fixed("solo", vec![SchemeSpec::inor()]),
            ])
            .build()
            .unwrap();
        assert_eq!(grid.samples().len(), 6); // 3 × 2 × 1 drive × 1 variation
        assert_eq!(grid.len(), 12); // × 2 lineups
        assert!(!grid.is_empty());
        assert_eq!(grid.expected_thermal_solves(), 6 * 10);
        assert_eq!(grid.thermal_solve_count(), 0); // nothing ran yet

        // Cell indices are dense and in grid order; lineups alternate
        // fastest.
        for (i, cell) in grid.cells().iter().enumerate() {
            assert_eq!(cell.key().index(), i);
        }
        assert_eq!(grid.cells()[0].key().lineup(), "paper");
        assert_eq!(grid.cells()[1].key().lineup(), "solo");
        assert_eq!(
            grid.cells()[0].sample_index(),
            grid.cells()[1].sample_index()
        );
        assert_eq!(grid.cells()[0].key().module_count(), 6);
        assert_eq!(grid.cells()[11].key().module_count(), 12);
    }

    #[test]
    fn empty_axes_are_rejected() {
        for builder in [
            ScenarioGrid::builder().module_counts([]),
            ScenarioGrid::builder().seeds([]),
            ScenarioGrid::builder().drives([]),
            ScenarioGrid::builder().variations([]),
            ScenarioGrid::builder().faults([]),
            ScenarioGrid::builder().lineups([]),
        ] {
            assert!(matches!(
                builder.build(),
                Err(SimError::InvalidScenario { .. })
            ));
        }
    }

    #[test]
    fn fault_axis_multiplies_samples_and_labels_cells() {
        use crate::fault::FaultSeverity;

        let grid = ScenarioGrid::builder()
            .module_counts([8])
            .seeds([1, 2])
            .duration_seconds(12)
            .faults([
                FaultProfile::none(),
                FaultProfile::random("severe", FaultSeverity::severe()),
            ])
            .lineups([SchemeLineup::fixed("solo", vec![SchemeSpec::inor()])])
            .build()
            .unwrap();
        // 1 module count × 2 seeds × 1 drive × 1 variation × 2 faults.
        assert_eq!(grid.samples().len(), 4);
        assert_eq!(grid.len(), 4);
        assert_eq!(grid.cells()[0].key().fault(), "healthy");
        assert_eq!(grid.cells()[1].key().fault(), "severe");
        // The healthy sample carries no plan; the severe one does.
        assert!(grid.scenario(&grid.cells()[0]).fault_plan().is_empty());
        assert!(!grid.scenario(&grid.cells()[1]).fault_plan().is_empty());
        // Same severity, different seeds → different plans.
        assert_ne!(
            grid.scenario(&grid.cells()[1]).fault_plan(),
            grid.scenario(&grid.cells()[3]).fault_plan()
        );
        let shown = grid.cells()[1].key().to_string();
        assert!(shown.contains("severe"), "{shown}");
    }

    #[test]
    fn fixed_fault_profiles_replay_one_plan_everywhere() {
        use crate::fault::{FaultAction, FaultEvent, FaultPlan};
        use teg_array::ModuleFault;

        let plan = FaultPlan::new(vec![FaultEvent::new(
            2,
            FaultAction::Module {
                module: 0,
                fault: ModuleFault::OpenCircuit,
            },
        )]);
        let profile = FaultProfile::fixed("m0-open", plan.clone());
        assert_eq!(profile.label(), "m0-open");
        assert_eq!(profile.plan(8, 10, 1), plan);
        assert_eq!(profile.plan(100, 800, 9), plan);
        let grid = ScenarioGrid::builder()
            .module_counts([4, 6])
            .duration_seconds(8)
            .faults([profile])
            .lineups([SchemeLineup::fixed("solo", vec![SchemeSpec::inor()])])
            .build()
            .unwrap();
        for cell in grid.cells() {
            assert_eq!(grid.scenario(cell).fault_plan(), &plan);
        }
        // Debug shows the label only.
        let text = format!("{:?}", FaultProfile::none());
        assert!(text.contains("healthy"), "{text}");
    }

    #[test]
    fn duplicate_lineup_schemes_are_rejected_at_build_time() {
        let err = ScenarioGrid::builder()
            .module_counts([8])
            .duration_seconds(5)
            .lineups([SchemeLineup::fixed(
                "twice",
                vec![SchemeSpec::inor(), SchemeSpec::inor()],
            )])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("INOR"), "{err}");
    }

    #[test]
    fn empty_lineups_are_rejected_at_build_time() {
        let err = ScenarioGrid::builder()
            .lineups([SchemeLineup::fixed("none", vec![])])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("no scheme"), "{err}");
    }

    #[test]
    fn invalid_scenario_parameters_propagate() {
        assert!(ScenarioGrid::builder().module_counts([0]).build().is_err());
        assert!(ScenarioGrid::builder().duration_seconds(0).build().is_err());
    }

    #[test]
    fn drive_profiles_carry_labels() {
        assert_eq!(DriveProfile::seconds(120).label(), "120s");
        assert_eq!(DriveProfile::paper_800s().duration_seconds(), 800);
        let named = DriveProfile::named("city", 300);
        assert_eq!(named.label(), "city");
        assert_eq!(named.duration_seconds(), 300);
    }

    #[test]
    fn cell_keys_render_their_coordinates() {
        let grid = ScenarioGrid::builder()
            .module_counts([4])
            .seeds([9])
            .duration_seconds(5)
            .build()
            .unwrap();
        let text = grid.cells()[0].key().to_string();
        assert!(text.contains("4mod"), "{text}");
        assert!(text.contains("seed9"), "{text}");
        assert!(text.contains("paper"), "{text}");
    }

    #[test]
    fn fault_variants_share_a_thermal_key_in_the_expected_solves() {
        use crate::fault::FaultSeverity;

        let shared = ScenarioGrid::builder()
            .module_counts([6])
            .seeds([1, 2])
            .duration_seconds(10)
            .faults([
                FaultProfile::none(),
                FaultProfile::random("light", FaultSeverity::light()),
                FaultProfile::random("severe", FaultSeverity::severe()),
            ])
            .lineups([SchemeLineup::fixed("solo", vec![SchemeSpec::inor()])])
            .build()
            .unwrap();
        // 6 samples (2 seeds × 3 fault profiles) but only 2 unique thermal
        // keys: the fault axis never reaches the radiator.
        assert_eq!(shared.samples().len(), 6);
        assert_eq!(shared.expected_thermal_solves(), 2 * 10);
        assert!(shared.trace_cache().is_some());

        let isolated = ScenarioGrid::builder()
            .module_counts([6])
            .seeds([1, 2])
            .duration_seconds(10)
            .faults([
                FaultProfile::none(),
                FaultProfile::random("light", FaultSeverity::light()),
                FaultProfile::random("severe", FaultSeverity::severe()),
            ])
            .lineups([SchemeLineup::fixed("solo", vec![SchemeSpec::inor()])])
            .isolated_traces()
            .build()
            .unwrap();
        assert_eq!(isolated.expected_thermal_solves(), 6 * 10);
        assert!(isolated.trace_cache().is_none());
    }

    #[test]
    fn kernel_mode_reaches_every_sample() {
        let grid = ScenarioGrid::builder()
            .module_counts([4, 6])
            .seeds([1, 2])
            .duration_seconds(5)
            .kernel_mode(KernelMode::Fast)
            .build()
            .unwrap();
        assert_eq!(grid.kernel_mode(), KernelMode::Fast);
        for sample in grid.samples() {
            assert_eq!(sample.kernel_mode(), KernelMode::Fast);
        }
        // The default stays bit-exact.
        let default_grid = ScenarioGrid::builder()
            .module_counts([4])
            .duration_seconds(5)
            .build()
            .unwrap();
        assert_eq!(default_grid.kernel_mode(), KernelMode::BitExact);
    }

    #[test]
    fn an_external_cache_spans_grids() {
        use crate::trace_cache::TraceCache;

        let cache = TraceCache::new();
        let build = || {
            ScenarioGrid::builder()
                .module_counts([5])
                .seeds([1])
                .duration_seconds(8)
                .lineups([SchemeLineup::fixed("solo", vec![SchemeSpec::inor()])])
                .trace_cache(cache.clone())
                .build()
                .unwrap()
        };
        let first = build();
        let second = build();
        first.samples()[0].thermal_trace().unwrap();
        second.samples()[0].thermal_trace().unwrap();
        // The second grid's identical sample reused the first grid's solve.
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        assert_eq!(first.thermal_solve_count(), 8);
        assert_eq!(second.thermal_solve_count(), 0);
    }

    #[test]
    fn grid_is_shareable_across_threads() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<ScenarioGrid>();
        assert_sync::<SchemeLineup>();
        assert_sync::<Scenario>();
    }
}
