//! Parallel scenario sweeps: parameter grids executed across all cores with
//! deterministic, serial-equivalent results.
//!
//! The paper evaluates one scenario (100 modules, one 800-second drive) ×
//! four schemes.  This module scales that shape out: a [`ScenarioGrid`]
//! enumerates the cross-product of module counts × seeds × drive profiles ×
//! variation models × scheme lineups, and a [`SweepRunner`] executes every
//! grid cell on a work-stealing pool of `std::thread::scope` workers —
//! no external dependencies, no unsafe code.
//!
//! Three properties make the sweep cheap and trustworthy:
//!
//! * **One thermal solve per unique thermal key.**  Cells that differ only
//!   in their scheme lineup share one [`Scenario`](crate::Scenario), whose
//!   `Arc`-cached [`ThermalTrace`](crate::ThermalTrace) is solved by
//!   whichever worker arrives first and reused by everyone else.  On top of
//!   that, the grid attaches a [`TraceCache`](crate::TraceCache) to every
//!   sample it builds, so *samples* with bit-identical thermal inputs —
//!   the fault-profile variants of one (module count, seed, drive)
//!   coordinate — also share a single radiator solve.  Sharing is keyed by
//!   exact input equality (never a lossy hash), so a cached trace is the
//!   same value, bit for bit, a private solve would have produced.
//! * **Deterministic ordering.**  Results are keyed by cell index, not by
//!   completion order, so the assembled [`SweepReport`] lists cells in grid
//!   order no matter how the pool interleaves.
//! * **Serial-equivalence.**  Under [`RuntimePolicy::Fixed`] the physics is
//!   bit-reproducible for schemes that decide purely from telemetry (INOR,
//!   EHTR, the static baseline): one worker and N workers produce identical
//!   [`SweepReport`]s.  DNOR measures its own runtime by design, so the
//!   default [`SchemeLineup::paper`] lineup reproduces only up to
//!   wall-clock timing jitter — use [`SchemeLineup::paper_fixed`], which
//!   gives DNOR a fixed assumed computation time, when bit-equality
//!   matters (the golden-trace regression harness does).  The same caveat
//!   applies to everything under the default [`RuntimePolicy::Measured`],
//!   where overhead accounting itself is measured.
//!
//! The grid also carries a **fault axis** ([`FaultProfile`]): each profile
//! produces one degraded variant of every scenario sample (seeded
//! [`FaultPlan`](crate::FaultPlan)s of module/switch/sensor faults), which
//! is how "Table I under degradation" reports sweep fault severity against
//! scheme choice.  Fault replay is deterministic, so every guarantee above
//! holds on grids containing faulted cells.
//!
//! [`RuntimePolicy::Fixed`]: crate::RuntimePolicy::Fixed
//! [`RuntimePolicy::Measured`]: crate::RuntimePolicy::Measured
//!
//! # Examples
//!
//! ```
//! use teg_sim::{ScenarioGrid, SchemeLineup, SweepRunner};
//!
//! # fn main() -> Result<(), teg_sim::SimError> {
//! let grid = ScenarioGrid::builder()
//!     .module_counts([8, 12])
//!     .seeds([1, 2])
//!     .duration_seconds(15)
//!     .lineups([SchemeLineup::paper()])
//!     .build()?;
//! assert_eq!(grid.len(), 4); // 2 module counts × 2 seeds × 1 lineup
//!
//! let report = SweepRunner::new().workers(2).run(&grid)?;
//! assert_eq!(report.cells().len(), 4);
//! let inor = report.summary("INOR").expect("INOR ran in every cell");
//! assert_eq!(inor.cells(), 4);
//! # Ok(())
//! # }
//! ```

mod grid;
mod presolve;
mod report;
mod runner;
mod spec;

pub use grid::{
    CellKey, DriveProfile, FaultProfile, ScenarioGrid, ScenarioGridBuilder, SchemeLineup, SweepCell,
};
pub use presolve::PresolveStats;
pub use report::{SchemeSummary, SweepCellReport, SweepReport};
pub use runner::SweepRunner;
pub use spec::GridSpec;
