//! The sweep-wide thermal pre-solve planner.
//!
//! Before a [`SweepRunner`](crate::SweepRunner) dispatches any cell, the
//! planner enumerates the grid's *unique thermal keys* (via
//! [`ScenarioGrid::unique_sample_indices`]), checks which of them the shared
//! [`TraceCache`](crate::TraceCache) has already solved, and solves the
//! missing ones across the worker pool up front.  Demand-path cells then
//! find every trace warm: no worker stalls mid-sweep behind another worker's
//! radiator solve, and when the planned keys outnumber the workers the
//! solves themselves run cell-parallel while few keys on many workers fall
//! back to row-parallel chunking inside each solve
//! ([`ThermalTrace::solve_with_threads`](crate::ThermalTrace::solve_with_threads)).
//!
//! The planner never changes results: every trace it produces is
//! bit-identical to what the demand path would have solved (same solver,
//! same inputs, chunk boundaries independent of thread count), so a
//! planner-on sweep report compares equal to a planner-off report.  Solve
//! *errors* are deliberately left to the demand path too — the failing cell
//! re-attempts its solve and reports the error with the runner's usual
//! lowest-failing-cell attribution, exactly as if no planner ran.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::thread;
use std::time::{Duration, Instant};

use crate::sweep::grid::ScenarioGrid;

/// What the pre-solve planner did for one sweep: how many unique thermal
/// keys it planned, how many were already warm in the cache, how many it
/// solved, and how long the pre-solve phase took.
///
/// `planned = skipped + solved` unless a solve failed, in which case the
/// difference is the number of keys left for the demand path to re-attempt
/// (and report the error for).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PresolveStats {
    planned: usize,
    skipped: usize,
    solved: usize,
    wall: Duration,
}

impl PresolveStats {
    /// Assembles stats from raw counters — the wire-codec inverse of the
    /// accessors, for transports that carry them across processes.
    #[must_use]
    pub const fn from_parts(planned: usize, skipped: usize, solved: usize, wall: Duration) -> Self {
        Self {
            planned,
            skipped,
            solved,
            wall,
        }
    }

    /// Unique thermal keys the planner enumerated for this sweep.
    #[must_use]
    pub const fn planned(&self) -> usize {
        self.planned
    }

    /// Planned keys that were already solved in the shared cache (e.g. by an
    /// earlier sweep or a resumed request's completed cells).
    #[must_use]
    pub const fn skipped(&self) -> usize {
        self.skipped
    }

    /// Planned keys this planner actually solved.
    #[must_use]
    pub const fn solved(&self) -> usize {
        self.solved
    }

    /// Wall-clock time of the pre-solve phase.
    #[must_use]
    pub const fn wall(&self) -> Duration {
        self.wall
    }
}

/// Pre-solves the given sample indices of a grid across `workers` threads.
///
/// Keys are distributed over `min(workers, planned)` scoped threads; when
/// the workers outnumber the keys, the surplus is folded *into* each solve
/// as row-parallel chunk threads, so a one-key grid on a four-worker pool
/// still uses the whole pool.  Infallible by design: a key whose solve
/// fails is simply left unsolved for the demand path to re-attempt, so the
/// planner cannot change which error a sweep reports.
pub(crate) fn presolve_samples(
    grid: &ScenarioGrid,
    indices: &[usize],
    workers: usize,
) -> PresolveStats {
    let start = Instant::now();
    let planned = indices.len();
    if planned == 0 {
        return PresolveStats::from_parts(0, 0, 0, start.elapsed());
    }
    let workers = workers.max(1);
    let concurrent = workers.min(planned);
    let per_solve = (workers / planned).clamp(1, workers);
    let solved = AtomicUsize::new(0);
    let skipped = AtomicUsize::new(0);
    let samples = grid.samples();
    let run_one = |index: usize| match samples[index].presolve(per_solve) {
        Ok(true) => {
            solved.fetch_add(1, Ordering::Relaxed);
        }
        Ok(false) => {
            skipped.fetch_add(1, Ordering::Relaxed);
        }
        // Left for the demand path: the owning cell re-solves and reports.
        Err(_) => {}
    };
    if concurrent <= 1 {
        for &index in indices {
            run_one(index);
        }
    } else {
        let queue = Mutex::new(indices.iter().copied());
        thread::scope(|scope| {
            for _ in 0..concurrent {
                scope.spawn(|| loop {
                    let next = queue.lock().unwrap_or_else(PoisonError::into_inner).next();
                    let Some(index) = next else { break };
                    run_one(index);
                });
            }
        });
    }
    PresolveStats::from_parts(
        planned,
        skipped.into_inner(),
        solved.into_inner(),
        start.elapsed(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::grid::{FaultProfile, SchemeLineup};
    use crate::trace_cache::TraceCache;
    use teg_reconfig::SchemeSpec;

    fn grid(cache: Option<TraceCache>) -> ScenarioGrid {
        let mut builder = ScenarioGrid::builder()
            .module_counts([6])
            .seeds([1, 2])
            .duration_seconds(10)
            .faults([
                FaultProfile::none(),
                FaultProfile::random("f", crate::fault::FaultSeverity::moderate()),
            ])
            .lineups([SchemeLineup::fixed("solo", vec![SchemeSpec::inor()])]);
        if let Some(cache) = cache {
            builder = builder.trace_cache(cache);
        }
        builder.build().unwrap()
    }

    #[test]
    fn planner_solves_each_unique_key_once() {
        let g = grid(None);
        // 2 seeds × 2 fault profiles = 4 samples, but faults do not touch
        // the radiator: 2 unique keys.
        let indices = g.unique_sample_indices();
        assert_eq!(indices.len(), 2);
        let stats = presolve_samples(&g, &indices, 4);
        assert_eq!(stats.planned(), 2);
        assert_eq!(stats.solved(), 2);
        assert_eq!(stats.skipped(), 0);
        assert_eq!(g.thermal_solve_count(), 2 * 10);
        // A second pass finds everything warm.
        let again = presolve_samples(&g, &indices, 4);
        assert_eq!(again.solved(), 0);
        assert_eq!(again.skipped(), 2);
        assert_eq!(g.thermal_solve_count(), 2 * 10);
    }

    #[test]
    fn planner_skips_keys_an_external_cache_already_holds() {
        let cache = TraceCache::new();
        let first = grid(Some(cache.clone()));
        presolve_samples(&first, &first.unique_sample_indices(), 2);
        let second = grid(Some(cache));
        let stats = presolve_samples(&second, &second.unique_sample_indices(), 2);
        assert_eq!(stats.planned(), 2);
        assert_eq!(stats.skipped(), 2, "warm keys cost nothing");
        assert_eq!(stats.solved(), 0);
        assert_eq!(second.thermal_solve_count(), 0);
    }

    #[test]
    fn empty_plan_is_a_cheap_no_op() {
        let g = grid(None);
        let stats = presolve_samples(&g, &[], 4);
        assert_eq!(stats, PresolveStats::from_parts(0, 0, 0, stats.wall()));
        assert_eq!(g.thermal_solve_count(), 0);
    }
}
