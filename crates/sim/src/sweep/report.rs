//! Aggregated results of a scenario sweep.

use std::fmt;

use teg_units::{Joules, Milliseconds};

use crate::comparison::ComparisonReport;
use crate::sweep::grid::CellKey;
use crate::sweep::presolve::PresolveStats;

/// One cell's outcome: its grid coordinates plus the full lockstep
/// comparison report of its lineup.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCellReport {
    key: CellKey,
    report: ComparisonReport,
}

impl SweepCellReport {
    pub(crate) fn new(key: CellKey, report: ComparisonReport) -> Self {
        Self { key, report }
    }

    /// Reassembles a cell report from its coordinates and comparison report
    /// — the wire-codec inverse of [`SweepCellReport::key`] and
    /// [`SweepCellReport::report`].  Within one process, cell reports come
    /// from [`SweepRunner::run`](crate::SweepRunner::run).
    #[must_use]
    pub fn from_parts(key: CellKey, report: ComparisonReport) -> Self {
        Self::new(key, report)
    }

    /// The cell's grid coordinates.
    #[must_use]
    pub const fn key(&self) -> &CellKey {
        &self.key
    }

    /// The cell's per-scheme simulation reports.
    #[must_use]
    pub const fn report(&self) -> &ComparisonReport {
        &self.report
    }
}

/// Cross-cell statistics for one scheme name.
///
/// Energies are *not* normalised across cells — a scheme that ran on both
/// 10-module and 100-module samples averages over both — so summaries are
/// most meaningful per scheme *within* one grid, where every scheme of a
/// lineup saw exactly the same cells.  The power ratio (net energy over the
/// ideal bound) is scale-free and comparable across any mix of cells.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemeSummary {
    scheme: String,
    cells: usize,
    mean_net_energy: Joules,
    p50_net_energy: Joules,
    p95_net_energy: Joules,
    mean_power_ratio: f64,
    mean_runtime: Milliseconds,
    switch_total: usize,
}

impl SchemeSummary {
    /// The scheme name the statistics aggregate over.
    #[must_use]
    pub fn scheme(&self) -> &str {
        &self.scheme
    }

    /// Number of cells the scheme ran in.
    #[must_use]
    pub const fn cells(&self) -> usize {
        self.cells
    }

    /// Mean net energy per cell.
    #[must_use]
    pub const fn mean_net_energy(&self) -> Joules {
        self.mean_net_energy
    }

    /// Median (nearest-rank) net energy across cells.
    #[must_use]
    pub const fn p50_net_energy(&self) -> Joules {
        self.p50_net_energy
    }

    /// 95th-percentile (nearest-rank) net energy across cells.
    #[must_use]
    pub const fn p95_net_energy(&self) -> Joules {
        self.p95_net_energy
    }

    /// Mean fraction of the ideal energy captured (Fig. 7's ratio,
    /// aggregated).
    #[must_use]
    pub const fn mean_power_ratio(&self) -> f64 {
        self.mean_power_ratio
    }

    /// Mean per-invocation algorithm runtime across cells.
    #[must_use]
    pub const fn mean_runtime(&self) -> Milliseconds {
        self.mean_runtime
    }

    /// Total switch events across cells.
    #[must_use]
    pub const fn switch_total(&self) -> usize {
        self.switch_total
    }
}

/// The outcome of a sweep: one [`SweepCellReport`] per grid cell in grid
/// order, per-scheme summary statistics, the total thermal-solve count, and
/// (when the runner's planner ran) the pre-solve statistics.
///
/// Everything in the report is ordered by cell index and first appearance,
/// never by completion order, so `PartialEq` between two reports is a
/// meaningful serial-vs-parallel equivalence check.  The pre-solve stats
/// are *excluded* from equality: they describe how the sweep was scheduled
/// (including a wall-clock time), not what it computed, so planner-on and
/// planner-off runs of the same grid compare equal.
#[derive(Debug, Clone)]
pub struct SweepReport {
    cells: Vec<SweepCellReport>,
    schemes: Vec<SchemeSummary>,
    thermal_solves: usize,
    presolve: Option<PresolveStats>,
}

impl PartialEq for SweepReport {
    fn eq(&self, other: &Self) -> bool {
        self.cells == other.cells
            && self.schemes == other.schemes
            && self.thermal_solves == other.thermal_solves
    }
}

impl SweepReport {
    pub(crate) fn new(cells: Vec<SweepCellReport>, thermal_solves: usize) -> Self {
        let schemes = summarise(&cells);
        Self {
            cells,
            schemes,
            thermal_solves,
            presolve: None,
        }
    }

    /// Attaches the pre-solve planner's statistics to the report.
    pub(crate) fn with_presolve(mut self, presolve: PresolveStats) -> Self {
        self.presolve = Some(presolve);
        self
    }

    /// What the pre-solve planner did for this sweep, or `None` when the
    /// runner ran with the planner disabled (or the report was rebuilt from
    /// transported cells).
    #[must_use]
    pub const fn presolve(&self) -> Option<&PresolveStats> {
        self.presolve.as_ref()
    }

    /// Reassembles a sweep report from per-cell reports and a thermal-solve
    /// count.  The per-scheme summaries are *recomputed* from the cells with
    /// the same deterministic aggregation [`SweepRunner`](crate::SweepRunner)
    /// uses, so a report rebuilt from faithfully transported cells compares
    /// equal (`PartialEq`) to the in-process original.
    #[must_use]
    pub fn from_cells(cells: Vec<SweepCellReport>, thermal_solves: usize) -> Self {
        Self::new(cells, thermal_solves)
    }

    /// The per-cell reports in grid order.
    #[must_use]
    pub fn cells(&self) -> &[SweepCellReport] {
        &self.cells
    }

    /// The per-scheme summaries, ordered by first appearance in the grid.
    #[must_use]
    pub fn summaries(&self) -> &[SchemeSummary] {
        &self.schemes
    }

    /// The summary of the scheme with the given name, if it ran.
    #[must_use]
    pub fn summary(&self, scheme: &str) -> Option<&SchemeSummary> {
        self.schemes.iter().find(|s| s.scheme() == scheme)
    }

    /// Radiator solves the sweep performed — one per drive-cycle second of
    /// each *distinct* scenario sample when the shared-trace cache held,
    /// however many cells and workers replayed each sample.
    #[must_use]
    pub const fn thermal_solves(&self) -> usize {
        self.thermal_solves
    }

    /// The scheme whose mean net energy is highest.
    #[must_use]
    pub fn best_scheme(&self) -> Option<&SchemeSummary> {
        self.schemes.iter().max_by(|a, b| {
            a.mean_net_energy()
                .value()
                .total_cmp(&b.mean_net_energy().value())
        })
    }

    /// Renders the per-scheme summaries as an aligned table.
    #[must_use]
    pub fn summary_table(&self) -> String {
        let mut out = String::from(
            "Scheme    | Cells | Mean Energy (J) | p50 (J)  | p95 (J)  | Ratio | Avg Runtime (ms) | Switches\n",
        );
        out.push_str(
            "----------+-------+-----------------+----------+----------+-------+------------------+---------\n",
        );
        for s in &self.schemes {
            out.push_str(&format!(
                "{:<10}| {:>5} | {:>15.1} | {:>8.1} | {:>8.1} | {:>5.3} | {:>16.3} | {:>8}\n",
                s.scheme(),
                s.cells(),
                s.mean_net_energy().value(),
                s.p50_net_energy().value(),
                s.p95_net_energy().value(),
                s.mean_power_ratio(),
                s.mean_runtime().value(),
                s.switch_total(),
            ));
        }
        out
    }
}

impl fmt::Display for SweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary_table())
    }
}

/// Nearest-rank percentile of an unsorted sample (deterministic; `p` in
/// `[0, 100]`).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    // Multiply before dividing: `p / 100.0` is inexact for most integer `p`
    // (0.95 rounds up in binary), so `p / 100.0 * n` can land a hair above
    // the exact rank and `ceil` then overshoots by one — at n=20 that made
    // p95 silently equal the max.  `p * n` is exact for integer inputs well
    // past any realistic cell count, and dividing an exact multiple of 100
    // by 100.0 is correctly rounded to the integer rank.
    let rank = (p * sorted.len() as f64 / 100.0).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn summarise(cells: &[SweepCellReport]) -> Vec<SchemeSummary> {
    // Scheme order = first appearance in cell order: deterministic for any
    // worker count because cells are already in grid order.
    let mut order: Vec<&str> = Vec::new();
    for cell in cells {
        for report in cell.report().reports() {
            if !order.contains(&report.scheme()) {
                order.push(report.scheme());
            }
        }
    }
    order
        .into_iter()
        .map(|scheme| {
            let mut net = Vec::new();
            let mut ratio_sum = 0.0;
            let mut runtime_ms_sum = 0.0;
            let mut switches = 0;
            for cell in cells {
                if let Some(report) = cell.report().report(scheme) {
                    net.push(report.net_energy().value());
                    ratio_sum += report.ideal_fraction();
                    runtime_ms_sum += report.average_runtime().value();
                    switches += report.switch_count();
                }
            }
            let count = net.len();
            let mean = net.iter().sum::<f64>() / count as f64;
            net.sort_by(f64::total_cmp);
            SchemeSummary {
                scheme: scheme.to_owned(),
                cells: count,
                mean_net_energy: Joules::new(mean),
                p50_net_energy: Joules::new(percentile(&net, 50.0)),
                p95_net_energy: Joules::new(percentile(&net, 95.0)),
                mean_power_ratio: ratio_sum / count as f64,
                mean_runtime: Milliseconds::new(runtime_ms_sum / count as f64),
                switch_total: switches,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&values, 50.0), 3.0);
        assert_eq!(percentile(&values, 95.0), 5.0);
        assert_eq!(percentile(&values, 100.0), 5.0);
        assert_eq!(percentile(&values, 0.0), 1.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn percentile_small_cell_counts_exact() {
        // n = 1: every percentile is the lone sample.
        assert_eq!(percentile(&[4.0], 50.0), 4.0);
        assert_eq!(percentile(&[4.0], 95.0), 4.0);

        // n = 2: rank(50) = ceil(1.0) = 1 → lower sample; p95 → upper.
        let two = [1.0, 2.0];
        assert_eq!(percentile(&two, 50.0), 1.0);
        assert_eq!(percentile(&two, 95.0), 2.0);

        // n = 3: rank(50) = ceil(1.5) = 2 → middle; rank(95) = ceil(2.85) = 3.
        let three = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&three, 50.0), 2.0);
        assert_eq!(percentile(&three, 95.0), 3.0);
    }

    #[test]
    fn percentile_rank_is_exact_at_n20() {
        // Regression: with `p / 100.0 * n`, 0.95 is not representable and
        // 0.95 * 20 lands at 19.000000000000004, so ceil gave rank 20 and
        // p95 of a 20-cell grid silently equalled the max.  The exact
        // nearest-rank answer is rank ceil(19.0) = 19.
        let values: Vec<f64> = (1..=20).map(f64::from).collect();
        assert_eq!(percentile(&values, 95.0), 19.0);
        assert_eq!(percentile(&values, 50.0), 10.0);
        assert_eq!(percentile(&values, 100.0), 20.0);
    }
}
