//! The work-stealing execution engine behind scenario sweeps.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};
use std::thread;

use crate::comparison::{Comparison, ComparisonReport};
use crate::error::SimError;
use crate::session::{RuntimePolicy, SolverPool};
use crate::sweep::grid::{ScenarioGrid, SweepCell};
use crate::sweep::presolve::presolve_samples;
use crate::sweep::report::{SweepCellReport, SweepReport};

/// Executes every cell of a [`ScenarioGrid`] on a pool of scoped worker
/// threads.
///
/// Cells are distributed round-robin into per-worker deques; a worker that
/// drains its own deque steals from the back of its siblings', so an uneven
/// grid (an 800-second cell next to 30-second cells) still keeps every core
/// busy.  Results are written into a slot per cell index, which makes the
/// assembled [`SweepReport`] independent of completion order — the
/// serial-equivalence guarantee the integration tests pin down.
///
/// Thermal work is shared at two levels while the pool runs: cells of one
/// scenario sample reuse its `Arc`-cached trace, and samples with equal
/// thermal inputs (e.g. fault-profile variants) resolve through the grid's
/// [`TraceCache`](crate::TraceCache), so [`SweepReport::thermal_solves`]
/// counts one radiator solve per drive-cycle second of each *unique thermal
/// key*, whichever worker got there first.
///
/// # Examples
///
/// ```
/// use teg_sim::{RuntimePolicy, ScenarioGrid, SweepRunner};
/// use teg_units::Seconds;
///
/// # fn main() -> Result<(), teg_sim::SimError> {
/// let grid = ScenarioGrid::builder()
///     .module_counts([10])
///     .seeds([1, 2, 3])
///     .duration_seconds(12)
///     .build()?;
/// let report = SweepRunner::new()
///     .workers(3)
///     .runtime_policy(RuntimePolicy::Fixed(Seconds::new(0.002)))
///     .run(&grid)?;
/// assert_eq!(report.cells().len(), 3);
/// // One radiator solve per drive second of each distinct sample.
/// assert_eq!(report.thermal_solves(), 3 * 12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SweepRunner {
    workers: usize,
    runtime_policy: RuntimePolicy,
    presolve: bool,
}

impl SweepRunner {
    /// Creates a runner sized to the machine's available parallelism, with
    /// the default [`RuntimePolicy::Measured`] accounting and the thermal
    /// pre-solve planner enabled.
    #[must_use]
    pub fn new() -> Self {
        Self {
            workers: thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            runtime_policy: RuntimePolicy::Measured,
            presolve: true,
        }
    }

    /// Sets the number of worker threads (clamped to at least 1).  `1`
    /// reproduces the serial execution exactly.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The number of worker threads the runner will spawn (before clamping
    /// to the grid size).
    #[must_use]
    pub const fn worker_count(&self) -> usize {
        self.workers
    }

    /// Replaces the runtime-accounting policy every cell runs under.
    /// [`RuntimePolicy::Fixed`] makes the sweep bit-reproducible for any
    /// worker count, provided the schemes decide purely from telemetry
    /// (INOR, EHTR, the baseline do; DNOR's switch economics consult its
    /// own measured runtime, so it reproduces only up to timing jitter).
    #[must_use]
    pub fn runtime_policy(mut self, policy: RuntimePolicy) -> Self {
        self.runtime_policy = policy;
        self
    }

    /// Enables or disables the thermal pre-solve planner (enabled by
    /// default).  With the planner on, the runner solves every missing
    /// unique thermal key of the grid across the worker pool *before*
    /// dispatching cells, so no worker stalls mid-sweep behind another's
    /// radiator solve.  The planner never changes results — reports compare
    /// equal either way; it only changes when the solves happen (and records
    /// [`SweepReport::presolve`] stats when on).
    #[must_use]
    pub const fn presolve(mut self, enabled: bool) -> Self {
        self.presolve = enabled;
        self
    }

    /// Whether the thermal pre-solve planner will run before cell dispatch.
    #[must_use]
    pub const fn presolve_enabled(&self) -> bool {
        self.presolve
    }

    /// Runs every cell of the grid and assembles the report in grid order.
    ///
    /// # Errors
    ///
    /// Returns the error of the lowest-indexed failing cell (deterministic
    /// for any worker count), or [`SimError::InvalidScenario`] for an empty
    /// grid.  A scheme that *panics* is confined to its cell and reported
    /// the same way, as that cell's [`SimError::InvalidScenario`].
    pub fn run(&self, grid: &ScenarioGrid) -> Result<SweepReport, SimError> {
        let cells = grid.cells();
        if cells.is_empty() {
            return Err(SimError::InvalidScenario {
                reason: "scenario grid has no cells".into(),
            });
        }
        let solves_before = grid.thermal_solve_count();
        let workers = self.workers.min(cells.len());
        let policy = self.runtime_policy;

        // Pre-solve phase: warm every missing unique thermal key across the
        // pool before any cell runs, so the demand path below never blocks
        // a worker behind another worker's radiator solve.
        let presolve_stats = self
            .presolve
            .then(|| presolve_samples(grid, &grid.unique_sample_indices(), workers));

        // Per-worker deques seeded round-robin; a slot per cell for results.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w..cells.len()).step_by(workers).collect()))
            .collect();
        let results: Vec<Mutex<Option<Result<ComparisonReport, SimError>>>> =
            cells.iter().map(|_| Mutex::new(None)).collect();

        thread::scope(|scope| {
            for own in 0..workers {
                let queues = &queues;
                let results = &results;
                scope.spawn(move || {
                    // One solver pool per worker: the electrical-solver
                    // scratch warms up on the first cell and is reused by
                    // every later cell this worker executes.
                    let mut pool = SolverPool::new();
                    while let Some(index) = next_job(queues, own) {
                        // A panicking scheme must not take down the scope
                        // (thread::scope re-raises worker panics on join):
                        // confine it to its cell and report it as that
                        // cell's error.  The state it can poison — its own
                        // fresh scheme instances, this result slot and the
                        // worker-local solver scratch — is local, hence the
                        // AssertUnwindSafe.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                run_cell(grid, &cells[index], policy, &mut pool)
                            }))
                            .unwrap_or_else(|_| {
                                Err(SimError::InvalidScenario {
                                    reason: format!(
                                        "sweep cell {} panicked in a scheme or solver",
                                        cells[index].key()
                                    ),
                                })
                            });
                        *results[index]
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner) = Some(outcome);
                    }
                });
            }
        });

        let mut reports = Vec::with_capacity(cells.len());
        for (cell, slot) in cells.iter().zip(results) {
            let outcome = slot
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .unwrap_or_else(|| {
                    // Defensive: with per-cell panic catching every popped
                    // job fills its slot, so an empty one would mean a
                    // scheduler bug.
                    Err(SimError::InvalidScenario {
                        reason: format!("sweep cell {} was abandoned by its worker", cell.key()),
                    })
                });
            reports.push(SweepCellReport::new(cell.key().clone(), outcome?));
        }
        let thermal_solves = grid.thermal_solve_count() - solves_before;
        let mut report = SweepReport::new(reports, thermal_solves);
        if let Some(stats) = presolve_stats {
            report = report.with_presolve(stats);
        }
        Ok(report)
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new()
    }
}

/// Pops the next cell index: the front of the worker's own deque, else a
/// steal from the back of the fullest sibling.
fn next_job(queues: &[Mutex<VecDeque<usize>>], own: usize) -> Option<usize> {
    if let Some(index) = queues[own]
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .pop_front()
    {
        return Some(index);
    }
    // Steal from the victim with the most remaining work so the tail of the
    // sweep stays balanced.
    let victim = (0..queues.len()).filter(|&w| w != own).max_by_key(|&w| {
        queues[w]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    })?;
    queues[victim]
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .pop_back()
}

fn run_cell(
    grid: &ScenarioGrid,
    cell: &SweepCell,
    policy: RuntimePolicy,
    pool: &mut SolverPool,
) -> Result<ComparisonReport, SimError> {
    let scenario = grid.scenario(cell);
    let specs = grid.lineup(cell).specs(cell.key().module_count());
    Comparison::from_specs(scenario, &specs)
        .runtime_policy(policy)
        .solver_pool(pool)
        .run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::grid::{ScenarioGrid, SchemeLineup};
    use teg_reconfig::SchemeSpec;
    use teg_units::Seconds;

    fn small_grid() -> ScenarioGrid {
        ScenarioGrid::builder()
            .module_counts([6, 8])
            .seeds([1, 2])
            .duration_seconds(8)
            .lineups([SchemeLineup::fixed(
                "duo",
                vec![SchemeSpec::inor(), SchemeSpec::baseline_square_grid(6)],
            )])
            .build()
            .unwrap()
    }

    #[test]
    fn runner_defaults_are_sane() {
        let runner = SweepRunner::new();
        assert!(runner.worker_count() >= 1);
        assert_eq!(SweepRunner::default().worker_count(), runner.worker_count());
        assert_eq!(SweepRunner::new().workers(0).worker_count(), 1);
    }

    #[test]
    fn sweep_runs_every_cell_and_counts_solves_once() {
        let grid = small_grid();
        let report = SweepRunner::new().workers(4).run(&grid).unwrap();
        assert_eq!(report.cells().len(), 4);
        // 4 distinct samples × 8 drive seconds, solved once each even with
        // more workers than samples.
        assert_eq!(report.thermal_solves(), 4 * 8);
        assert_eq!(grid.thermal_solve_count(), 4 * 8);
        for cell in report.cells() {
            assert_eq!(cell.report().reports().len(), 2);
        }
        let inor = report.summary("INOR").unwrap();
        assert_eq!(inor.cells(), 4);
        assert!(inor.mean_net_energy().value() > 0.0);
        assert!(report.summary("nonesuch").is_none());
        // On these short drives the winner can go either way; it must simply
        // be one of the two competitors.
        let best = report.best_scheme().unwrap().scheme();
        assert!(best == "INOR" || best == "Baseline", "{best}");
    }

    #[test]
    fn rerunning_a_warm_grid_costs_no_new_solves() {
        let grid = small_grid();
        let runner = SweepRunner::new().workers(2);
        let first = runner.run(&grid).unwrap();
        assert_eq!(first.thermal_solves(), 4 * 8);
        let second = runner.run(&grid).unwrap();
        // The per-sample trace cache is shared across runs of the same grid.
        assert_eq!(second.thermal_solves(), 0);
        assert_eq!(grid.thermal_solve_count(), 4 * 8);
    }

    #[test]
    fn worker_counts_beyond_the_grid_are_harmless() {
        let grid = ScenarioGrid::builder()
            .module_counts([5])
            .seeds([3])
            .duration_seconds(6)
            .lineups([SchemeLineup::fixed("solo", vec![SchemeSpec::inor()])])
            .build()
            .unwrap();
        let report = SweepRunner::new().workers(32).run(&grid).unwrap();
        assert_eq!(report.cells().len(), 1);
    }

    #[test]
    fn serial_and_parallel_reports_are_identical_under_fixed_runtime() {
        let policy = RuntimePolicy::Fixed(Seconds::new(0.003));
        let serial = SweepRunner::new()
            .workers(1)
            .runtime_policy(policy)
            .run(&small_grid())
            .unwrap();
        let parallel = SweepRunner::new()
            .workers(4)
            .runtime_policy(policy)
            .run(&small_grid())
            .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn planner_on_and_off_reports_compare_equal() {
        let policy = RuntimePolicy::Fixed(Seconds::new(0.003));
        let on = SweepRunner::new()
            .workers(4)
            .runtime_policy(policy)
            .run(&small_grid())
            .unwrap();
        let off = SweepRunner::new()
            .workers(4)
            .runtime_policy(policy)
            .presolve(false)
            .run(&small_grid())
            .unwrap();
        // Same cells, same summaries, same thermal-solve total: the planner
        // only moves the solves ahead of dispatch.
        assert_eq!(on, off);
        let stats = on.presolve().expect("planner stats recorded");
        assert_eq!(stats.planned(), 4, "four distinct thermal keys");
        assert_eq!(stats.solved(), 4);
        assert_eq!(stats.skipped(), 0);
        assert!(off.presolve().is_none(), "planner off records no stats");
    }

    #[test]
    fn planner_skips_keys_a_warm_grid_already_solved() {
        let grid = small_grid();
        let runner = SweepRunner::new().workers(2);
        runner.run(&grid).unwrap();
        let second = runner.run(&grid).unwrap();
        let stats = second.presolve().expect("planner stats recorded");
        assert_eq!(stats.planned(), 4);
        assert_eq!(stats.skipped(), 4, "everything already warm");
        assert_eq!(stats.solved(), 0);
        assert_eq!(second.thermal_solves(), 0);
    }

    #[test]
    fn aco_sweeps_are_workers_independent_and_seed_reproducible() {
        // The searched scheme draws from a seeded generator per cell: the
        // report must not depend on how cells are spread over workers, and
        // rerunning the same grid must be bit-identical.
        let grid = || {
            ScenarioGrid::builder()
                .module_counts([8])
                .seeds([1, 2])
                .duration_seconds(6)
                .lineups([SchemeLineup::parse("fixed:search:aco+inor").unwrap()])
                .build()
                .unwrap()
        };
        let policy = RuntimePolicy::Fixed(Seconds::new(0.003));
        let serial = SweepRunner::new()
            .workers(1)
            .runtime_policy(policy)
            .run(&grid())
            .unwrap();
        let parallel = SweepRunner::new()
            .workers(4)
            .runtime_policy(policy)
            .run(&grid())
            .unwrap();
        assert_eq!(serial, parallel);
        let again = SweepRunner::new()
            .workers(4)
            .runtime_policy(policy)
            .run(&grid())
            .unwrap();
        assert_eq!(parallel, again);
        let aco = serial.summary("ACO").unwrap();
        assert_eq!(aco.cells(), 2);
        // The colony is seeded with INOR's candidates, so per the energy
        // metric it cannot trail INOR by more than switching-overhead noise.
        let inor = serial.summary("INOR").unwrap();
        assert!(
            aco.mean_net_energy().value() >= 0.95 * inor.mean_net_energy().value(),
            "ACO {} vs INOR {}",
            aco.mean_net_energy(),
            inor.mean_net_energy()
        );
    }

    #[test]
    fn a_panicking_scheme_becomes_that_cells_error() {
        use teg_array::Configuration;
        use teg_reconfig::{ReconfigDecision, ReconfigError, Reconfigurer, TelemetryWindow};

        struct Panicking;
        impl Reconfigurer for Panicking {
            fn name(&self) -> &'static str {
                "Panicking"
            }
            fn period(&self) -> Seconds {
                Seconds::new(1.0)
            }
            fn decide(
                &mut self,
                _window: &TelemetryWindow<'_>,
                _current: &Configuration,
            ) -> Result<ReconfigDecision, ReconfigError> {
                panic!("scheme bug");
            }
        }

        let grid = ScenarioGrid::builder()
            .module_counts([5])
            .seeds([1])
            .duration_seconds(5)
            .lineups([SchemeLineup::fixed(
                "broken",
                vec![SchemeSpec::new(|| Panicking)],
            )])
            .build()
            .unwrap();
        let err = SweepRunner::new().workers(2).run(&grid).unwrap_err();
        // The panic is confined to the cell and surfaced as its error
        // instead of tearing down the whole sweep scope.
        assert!(err.to_string().contains("panicked"), "{err}");
    }

    #[test]
    fn summary_table_lists_every_scheme() {
        let report = SweepRunner::new().workers(2).run(&small_grid()).unwrap();
        let table = report.summary_table();
        assert!(table.contains("INOR"), "{table}");
        assert!(table.contains("Baseline"), "{table}");
        assert_eq!(report.to_string(), table);
    }
}
