//! Compact one-line serialisation of a sweep grid.
//!
//! A [`GridSpec`] captures the six axes of a [`ScenarioGrid`] as a single
//! text line, mirroring [`FaultPlan::spec`](crate::FaultPlan::spec) at the
//! grid level so whole sweep requests can travel over a wire, live in a
//! checkpoint header, or caption a report:
//!
//! ```text
//! modules=8,12|seeds=1,2|drive=porter-ii-800s:800|var=none|fault=healthy|lineup=paper
//! ```
//!
//! Axes are joined by `|`, values within an axis by `,`, and parameters
//! within a value token by `:` (with `+` separating the schemes of a fixed
//! lineup).  Fault-plan specs only ever contain `;`, `:` and `.`, so a full
//! `fixed:` fault profile nests inside a value without escaping.  Missing
//! axes parse to the paper's defaults, matching
//! [`ScenarioGrid::builder`](crate::ScenarioGrid::builder); emission always
//! writes all six in canonical order, so `parse(s).spec() == s` for any
//! canonically formatted `s`.
//!
//! A seventh, optional `kernel=` field selects the grid's
//! [`KernelMode`](teg_units::KernelMode) (`kernel=fast`).  The bit-exact
//! default is *omitted* on emission, so every spec line written before the
//! field existed — including the golden wire frames — stays byte-identical.
//!
//! Only *spec-able* axis values round-trip: profiles and lineups built from
//! the named presets (or from preset-token schemes) carry a token; ones
//! wrapping arbitrary closures do not, and [`GridSpec::spec`] reports which
//! axis blocks serialisation.

use std::fmt;

use teg_device::VariationModel;
use teg_units::KernelMode;

use crate::error::SimError;
use crate::sweep::grid::{
    DriveProfile, FaultProfile, ScenarioGrid, ScenarioGridBuilder, SchemeLineup,
};
use crate::trace_cache::TraceCache;

/// The serialisable description of a [`ScenarioGrid`]: every axis held as
/// values that can be written to (and re-read from) a compact text line.
///
/// # Examples
///
/// ```
/// use teg_sim::GridSpec;
///
/// # fn main() -> Result<(), teg_sim::SimError> {
/// let spec = GridSpec::parse("modules=8,12|seeds=1,2|drive=city:15")?;
/// let grid = spec.to_grid()?;
/// assert_eq!(grid.len(), 4); // 2 module counts × 2 seeds × paper lineup
/// // Emission is canonical: all six axes, fixed order.
/// let line = spec.spec()?;
/// assert_eq!(
///     line,
///     "modules=8,12|seeds=1,2|drive=city:15|var=none|fault=healthy|lineup=paper"
/// );
/// assert_eq!(GridSpec::parse(&line)?.spec()?, line);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GridSpec {
    module_counts: Vec<usize>,
    seeds: Vec<u64>,
    drives: Vec<DriveProfile>,
    variations: Vec<VariationModel>,
    faults: Vec<FaultProfile>,
    lineups: Vec<SchemeLineup>,
    kernel_mode: KernelMode,
}

impl Default for GridSpec {
    fn default() -> Self {
        Self::new()
    }
}

impl GridSpec {
    /// A spec with the paper's defaults on every axis — the same starting
    /// point as [`ScenarioGrid::builder`].
    #[must_use]
    pub fn new() -> Self {
        Self {
            module_counts: vec![100],
            seeds: vec![0],
            drives: vec![DriveProfile::paper_800s()],
            variations: vec![VariationModel::none()],
            faults: vec![FaultProfile::none()],
            lineups: vec![SchemeLineup::paper()],
            kernel_mode: KernelMode::BitExact,
        }
    }

    /// Replaces the module-count axis.
    #[must_use]
    pub fn module_counts(mut self, counts: impl IntoIterator<Item = usize>) -> Self {
        self.module_counts = counts.into_iter().collect();
        self
    }

    /// Replaces the drive-cycle seed axis.
    #[must_use]
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Replaces the drive-profile axis.
    #[must_use]
    pub fn drives(mut self, drives: impl IntoIterator<Item = DriveProfile>) -> Self {
        self.drives = drives.into_iter().collect();
        self
    }

    /// Replaces the module-variation axis.
    #[must_use]
    pub fn variations(mut self, variations: impl IntoIterator<Item = VariationModel>) -> Self {
        self.variations = variations.into_iter().collect();
        self
    }

    /// Replaces the fault axis.
    #[must_use]
    pub fn faults(mut self, faults: impl IntoIterator<Item = FaultProfile>) -> Self {
        self.faults = faults.into_iter().collect();
        self
    }

    /// Replaces the scheme-lineup axis.
    #[must_use]
    pub fn lineups(mut self, lineups: impl IntoIterator<Item = SchemeLineup>) -> Self {
        self.lineups = lineups.into_iter().collect();
        self
    }

    /// Selects the [`KernelMode`] the built grid runs its kernels in
    /// (default [`KernelMode::BitExact`]; the default is omitted from the
    /// emitted spec line, so pre-existing wire specs stay byte-identical).
    #[must_use]
    pub const fn kernel_mode(mut self, mode: KernelMode) -> Self {
        self.kernel_mode = mode;
        self
    }

    /// Total cells the grid will have: samples × lineups.  Available before
    /// building, so admission control can budget a request without paying
    /// for scenario construction.
    #[must_use]
    pub fn cell_count(&self) -> usize {
        self.module_counts.len()
            * self.seeds.len()
            * self.drives.len()
            * self.variations.len()
            * self.faults.len()
            * self.lineups.len()
    }

    /// Total simulated steps across all cells: for each (sample, lineup)
    /// pair, the drive's duration times the lineup's scheme count for that
    /// sample's module count.  The per-request work bound a service budgets
    /// against.
    #[must_use]
    pub fn total_steps(&self) -> usize {
        let per_coordinate = self.seeds.len() * self.variations.len() * self.faults.len();
        let mut steps = 0;
        for drive in &self.drives {
            for lineup in &self.lineups {
                for &module_count in &self.module_counts {
                    steps += drive.duration_seconds()
                        * lineup.specs(module_count).len()
                        * per_coordinate;
                }
            }
        }
        steps
    }

    /// Serialises the spec to its canonical one-line form.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidScenario`] when an axis holds a value with
    /// no compact token — a [`FaultProfile`]/[`SchemeLineup`] wrapping an
    /// arbitrary closure, or a label using reserved characters.
    pub fn spec(&self) -> Result<String, SimError> {
        let blocked = |axis: &str, label: &str| SimError::InvalidScenario {
            reason: format!("grid axis {axis:?} holds {label:?}, which has no compact spec token"),
        };
        let mut drives = Vec::with_capacity(self.drives.len());
        for drive in &self.drives {
            drives.push(
                drive
                    .spec()
                    .ok_or_else(|| blocked("drive", drive.label()))?,
            );
        }
        let variations: Vec<String> = self.variations.iter().map(variation_token).collect();
        let mut faults = Vec::with_capacity(self.faults.len());
        for fault in &self.faults {
            faults.push(
                fault
                    .spec()
                    .map(str::to_owned)
                    .ok_or_else(|| blocked("fault", fault.label()))?,
            );
        }
        let mut lineups = Vec::with_capacity(self.lineups.len());
        for lineup in &self.lineups {
            lineups.push(
                lineup
                    .spec()
                    .map(str::to_owned)
                    .ok_or_else(|| blocked("lineup", lineup.name()))?,
            );
        }
        let mut line = format!(
            "modules={}|seeds={}|drive={}|var={}|fault={}|lineup={}",
            join(&self.module_counts),
            join(&self.seeds),
            drives.join(","),
            variations.join(","),
            faults.join(","),
            lineups.join(",")
        );
        // The bit-exact default is omitted so spec lines written before the
        // kernel field existed (and the golden wire frames that embed them)
        // stay byte-identical.
        if self.kernel_mode.is_fast() {
            line.push_str("|kernel=");
            line.push_str(self.kernel_mode.token());
        }
        Ok(line)
    }

    /// Parses a one-line grid spec.  Axes may appear in any order; missing
    /// axes take the paper's defaults; unknown or repeated axes are errors.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidScenario`] naming the offending axis or
    /// value token.
    pub fn parse(text: &str) -> Result<Self, SimError> {
        let bad = |why: String| SimError::InvalidScenario { reason: why };
        let mut spec = Self::new();
        let mut seen: Vec<&str> = Vec::new();
        for chunk in text.split('|') {
            let chunk = chunk.trim();
            if chunk.is_empty() {
                continue;
            }
            let (axis, values) = chunk
                .split_once('=')
                .ok_or_else(|| bad(format!("grid spec chunk {chunk:?}: expected `axis=values`")))?;
            if seen.contains(&axis) {
                return Err(bad(format!("grid spec repeats axis {axis:?}")));
            }
            let tokens: Vec<&str> = values.split(',').collect();
            match axis {
                "modules" => {
                    spec.module_counts = parse_axis(axis, &tokens, |t| t.parse().ok())?;
                }
                "seeds" => {
                    spec.seeds = parse_axis(axis, &tokens, |t| t.parse().ok())?;
                }
                "drive" => {
                    spec.drives = parse_axis(axis, &tokens, DriveProfile::parse)?;
                }
                "var" => {
                    spec.variations = parse_axis(axis, &tokens, parse_variation)?;
                }
                "fault" => {
                    spec.faults = parse_axis(axis, &tokens, FaultProfile::parse)?;
                }
                "lineup" => {
                    spec.lineups = parse_axis(axis, &tokens, SchemeLineup::parse)?;
                }
                "kernel" => {
                    let modes: Vec<KernelMode> = parse_axis(axis, &tokens, |t| t.parse().ok())?;
                    let [mode] = modes.as_slice() else {
                        return Err(bad(format!(
                            "grid spec axis \"kernel\" takes exactly one mode, got {}",
                            modes.len()
                        )));
                    };
                    spec.kernel_mode = *mode;
                }
                other => {
                    return Err(bad(format!("grid spec names unknown axis {other:?}")));
                }
            }
            seen.push(axis);
        }
        Ok(spec)
    }

    /// The equivalent [`ScenarioGridBuilder`], with every axis applied (the
    /// trace-sharing default is the builder's: one fresh shared cache).
    #[must_use]
    pub fn to_builder(&self) -> ScenarioGridBuilder {
        ScenarioGrid::builder()
            .module_counts(self.module_counts.iter().copied())
            .seeds(self.seeds.iter().copied())
            .drives(self.drives.iter().cloned())
            .variations(self.variations.iter().copied())
            .faults(self.faults.iter().cloned())
            .lineups(self.lineups.iter().cloned())
            .kernel_mode(self.kernel_mode)
    }

    /// Builds the grid with the builder's default fresh shared cache.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioGridBuilder::build`] errors.
    pub fn to_grid(&self) -> Result<ScenarioGrid, SimError> {
        self.to_builder().build()
    }

    /// Builds the grid sharing the given external [`TraceCache`] — the hook
    /// a long-running service uses so repeated requests over overlapping
    /// parameter spaces pay each unique radiator solve once.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioGridBuilder::build`] errors.
    pub fn to_grid_with_cache(&self, cache: TraceCache) -> Result<ScenarioGrid, SimError> {
        self.to_builder().trace_cache(cache).build()
    }
}

impl fmt::Display for GridSpec {
    /// Formats the canonical spec line; axes without compact tokens render
    /// as `<unserialisable grid>` (use [`GridSpec::spec`] to get the error).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.spec() {
            Ok(line) => f.write_str(&line),
            Err(_) => f.write_str("<unserialisable grid>"),
        }
    }
}

fn join<T: fmt::Display>(values: &[T]) -> String {
    values
        .iter()
        .map(T::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_axis<T>(
    axis: &str,
    tokens: &[&str],
    parse: impl Fn(&str) -> Option<T>,
) -> Result<Vec<T>, SimError> {
    tokens
        .iter()
        .map(|token| {
            parse(token).ok_or_else(|| SimError::InvalidScenario {
                reason: format!("grid axis {axis:?}: cannot parse value {token:?}"),
            })
        })
        .collect()
}

/// The compact token of a [`VariationModel`]: `none` for the exact-nominal
/// model, `tol:<seebeck>:<resistance>` otherwise (`f64` `Display`
/// round-trips exactly).
fn variation_token(variation: &VariationModel) -> String {
    if variation.seebeck_tolerance() == 0.0 && variation.resistance_tolerance() == 0.0 {
        "none".to_owned()
    } else {
        format!(
            "tol:{}:{}",
            variation.seebeck_tolerance(),
            variation.resistance_tolerance()
        )
    }
}

fn parse_variation(token: &str) -> Option<VariationModel> {
    if token == "none" {
        return Some(VariationModel::none());
    }
    let rest = token.strip_prefix("tol:")?;
    let (seebeck, resistance) = rest.split_once(':')?;
    VariationModel::new(seebeck.parse().ok()?, resistance.parse().ok()?).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultSeverity};
    use teg_reconfig::SchemeSpec;
    use teg_units::Seconds;

    #[test]
    fn default_spec_is_the_paper_grid() {
        let spec = GridSpec::new();
        assert_eq!(
            spec.spec().unwrap(),
            "modules=100|seeds=0|drive=porter-ii-800s:800|var=none|fault=healthy|lineup=paper"
        );
        assert_eq!(spec.cell_count(), 1);
        assert_eq!(spec.total_steps(), 800 * 4); // 4 schemes in the paper lineup
        assert_eq!(spec.to_string(), spec.spec().unwrap());
    }

    #[test]
    fn canonical_lines_round_trip() {
        let line = "modules=8,12|seeds=1,2|drive=city:15,highway:30\
                    |var=none,tol:0.05:0.1|fault=healthy,random:worn:moderate\
                    |lineup=paper,fixed:duo:inor+ehtr";
        let spec = GridSpec::parse(line).unwrap();
        let canonical = spec.spec().unwrap();
        assert_eq!(
            GridSpec::parse(&canonical).unwrap().spec().unwrap(),
            canonical
        );
        assert_eq!(spec.cell_count(), 2 * 2 * 2 * 2 * 2 * 2);
        let grid = spec.to_grid().unwrap();
        assert_eq!(grid.len(), 64);
        assert_eq!(grid.cells()[0].key().lineup(), "paper");
        assert_eq!(grid.cells()[1].key().lineup(), "duo");
    }

    #[test]
    fn missing_axes_take_paper_defaults_and_order_is_free() {
        let spec = GridSpec::parse("seeds=3|modules=8").unwrap();
        assert_eq!(
            spec.spec().unwrap(),
            "modules=8|seeds=3|drive=porter-ii-800s:800|var=none|fault=healthy|lineup=paper"
        );
        assert_eq!(
            GridSpec::parse("").unwrap().spec().unwrap(),
            GridSpec::new().spec().unwrap()
        );
    }

    #[test]
    fn kernel_axis_round_trips_and_defaults_stay_byte_identical() {
        use teg_units::KernelMode;

        // The bit-exact default never emits a kernel field, so historical
        // spec lines (and the wire frames embedding them) are unchanged.
        let default_line = GridSpec::new().spec().unwrap();
        assert!(!default_line.contains("kernel"), "{default_line}");
        assert_eq!(
            GridSpec::parse("kernel=bitexact").unwrap().spec().unwrap(),
            default_line
        );

        // The fast lane appends a canonical trailing field that round-trips.
        let fast = GridSpec::new()
            .module_counts([8])
            .kernel_mode(KernelMode::Fast);
        let line = fast.spec().unwrap();
        assert_eq!(
            line,
            "modules=8|seeds=0|drive=porter-ii-800s:800|var=none|fault=healthy\
             |lineup=paper|kernel=fast"
        );
        let reparsed = GridSpec::parse(&line).unwrap();
        assert_eq!(reparsed.spec().unwrap(), line);
        let grid = reparsed.to_grid().unwrap();
        assert_eq!(grid.kernel_mode(), KernelMode::Fast);
        for sample in grid.samples() {
            assert_eq!(sample.kernel_mode(), KernelMode::Fast);
        }
    }

    #[test]
    fn malformed_specs_name_the_offending_axis() {
        for (text, needle) in [
            ("modules=8|modules=9", "repeats"),
            ("modules", "expected `axis=values`"),
            ("turbo=1", "unknown axis"),
            ("modules=", "cannot parse value"),
            ("modules=ten", "cannot parse value"),
            ("seeds=-1", "cannot parse value"),
            ("drive=city", "cannot parse value"),
            ("drive=city:0", "cannot parse value"),
            ("var=tol:2:0", "cannot parse value"),
            ("fault=random:worn:heavy", "cannot parse value"),
            ("lineup=fixed:duo:nonesuch", "cannot parse value"),
            ("kernel=turbo", "cannot parse value"),
            ("kernel=fast,bitexact", "exactly one mode"),
        ] {
            let err = GridSpec::parse(text).unwrap_err();
            let SimError::InvalidScenario { reason } = err else {
                panic!("unexpected error for {text:?}");
            };
            assert!(reason.contains(needle), "{text:?} → {reason}");
        }
    }

    #[test]
    fn profile_tokens_round_trip_through_their_parsers() {
        // Drive profiles.
        let drive = DriveProfile::named("city", 240);
        assert_eq!(drive.spec().as_deref(), Some("city:240"));
        assert_eq!(DriveProfile::parse("city:240"), Some(drive));
        assert_eq!(
            DriveProfile::parse("porter-ii-800s:800"),
            Some(DriveProfile::paper_800s())
        );
        assert!(DriveProfile::parse("city").is_none());
        assert!(DriveProfile::parse("ci,ty:10").is_none());

        // Lineups.
        assert_eq!(SchemeLineup::paper().spec(), Some("paper"));
        let fixed = SchemeLineup::paper_fixed(Seconds::new(0.002));
        assert_eq!(fixed.spec(), Some("paper-fixed:0.002"));
        let parsed = SchemeLineup::parse("paper-fixed:0.002").unwrap();
        assert_eq!(parsed.spec(), fixed.spec());
        assert_eq!(
            parsed
                .specs(10)
                .iter()
                .map(SchemeSpec::name)
                .collect::<Vec<_>>(),
            fixed
                .specs(10)
                .iter()
                .map(SchemeSpec::name)
                .collect::<Vec<_>>()
        );
        let duo = SchemeLineup::fixed("duo", vec![SchemeSpec::inor(), SchemeSpec::ehtr()]);
        assert_eq!(duo.spec(), Some("fixed:duo:inor+ehtr"));
        let reparsed = SchemeLineup::parse(duo.spec().unwrap()).unwrap();
        assert_eq!(reparsed.spec(), duo.spec());
        // The search scheme registers through the same token grammar — a
        // SUBMIT grid or lineup string gets it with no serve-side changes.
        let searched = SchemeLineup::parse("fixed:search:aco+inor+ehtr").unwrap();
        assert_eq!(searched.spec(), Some("fixed:search:aco+inor+ehtr"));
        assert_eq!(searched.specs(10)[0].name(), "ACO");
        let seeded = SchemeLineup::parse("fixed:seeded:aco:99+inor").unwrap();
        assert_eq!(seeded.specs(10)[0].spec(), Some("aco:99"));
        // The bare `baseline` token adapts to the cell's module count.
        let adaptive = SchemeLineup::parse("fixed:solo:baseline").unwrap();
        assert_eq!(adaptive.specs(25)[0].spec(), Some("baseline:25"));
        assert_eq!(adaptive.specs(49)[0].spec(), Some("baseline:49"));
        // Custom lineups have no token.
        assert_eq!(
            SchemeLineup::fixed("custom", vec![SchemeSpec::new(teg_reconfig::Inor::default)])
                .spec(),
            None
        );
        assert!(SchemeLineup::parse("fixed:du o:inor").is_none());

        // Fault profiles.
        assert_eq!(FaultProfile::none().spec(), Some("healthy"));
        let worn = FaultProfile::random("worn", FaultSeverity::moderate());
        assert_eq!(worn.spec(), Some("random:worn:moderate"));
        let custom_sev = FaultProfile::random("odd", FaultSeverity::new(0.1, 0.05, 0.25).unwrap());
        assert_eq!(custom_sev.spec(), Some("random:odd:0.1/0.05/0.25"));
        let reparsed = FaultProfile::parse(custom_sev.spec().unwrap()).unwrap();
        assert_eq!(reparsed.spec(), custom_sev.spec());
        assert_eq!(
            reparsed.plan(20, 100, 7),
            custom_sev.plan(20, 100, 7),
            "reparsed profiles generate identical plans"
        );
        let plan = FaultPlan::parse_spec("3:m1.open;9:m1.repair")
            .unwrap()
            .with_sensor_seed(42);
        let pinned = FaultProfile::fixed("pinned", plan.clone());
        assert_eq!(pinned.spec(), Some("fixed:pinned:42:3:m1.open;9:m1.repair"));
        let reparsed = FaultProfile::parse(pinned.spec().unwrap()).unwrap();
        assert_eq!(reparsed.plan(10, 20, 0), plan);
        assert_eq!(reparsed.spec(), pinned.spec());
        // A fixed profile over an empty plan round-trips too.
        let quiet = FaultProfile::fixed("quiet", FaultPlan::none());
        assert_eq!(quiet.spec(), Some("fixed:quiet:0:"));
        assert_eq!(
            FaultProfile::parse(quiet.spec().unwrap())
                .unwrap()
                .plan(4, 4, 0),
            FaultPlan::none()
        );
        assert_eq!(
            FaultProfile::parameterised("odd", |_, _, _| FaultPlan::none()).spec(),
            None
        );
    }
}
