//! The solved thermal history of a scenario, computed once and shared.
//!
//! Earlier revisions re-ran the ε-NTU radiator solve inside every
//! [`SimulationEngine::run`], so comparing the paper's four schemes solved
//! the identical thermal problem four times.  [`ThermalTrace`] hoists that
//! work out of the simulation loop: it is computed lazily, cached on the
//! [`Scenario`], and borrowed by every session and comparison that replays
//! the same drive cycle.
//!
//! [`SimulationEngine::run`]: crate::SimulationEngine::run
//! [`Scenario`]: crate::Scenario

use std::sync::Mutex;

use teg_array::ideal_power;
use teg_reconfig::TelemetryWindow;
use teg_thermal::{DriveCycle, DriveSample};
use teg_units::{Celsius, KernelMode, Seconds, TemperatureDelta, Watts};

use crate::error::SimError;
use crate::scenario::Scenario;

/// Samples per parallel solve chunk.  Chunk boundaries are a pure function
/// of the cycle length — never of the worker count — so the sample → chunk
/// assignment (and therefore every written value) is identical for any
/// number of solver threads.
const SOLVE_CHUNK: usize = 32;

/// One fixed slice of the solve: a run of drive-cycle samples plus the
/// matching disjoint ranges of every output buffer.
struct Chunk<'a> {
    /// Absolute index of the chunk's first sample.
    base: usize,
    samples: &'a [DriveSample],
    times: &'a mut [Seconds],
    ambients: &'a mut [Celsius],
    rows: &'a mut [f64],
    deltas: &'a mut [TemperatureDelta],
    ideal: &'a mut [Watts],
}

/// Per-module surface temperatures (and the ambient) for every sample of a
/// scenario's drive cycle — the radiator model solved exactly once.
///
/// # Examples
///
/// ```
/// use teg_sim::Scenario;
///
/// # fn main() -> Result<(), teg_sim::SimError> {
/// let scenario = Scenario::builder().module_count(10).duration_seconds(30).seed(1).build()?;
/// let trace = scenario.thermal_trace()?;
/// assert_eq!(trace.len(), 30);
/// // The entrance module is hotter than the exit module at every step.
/// assert!(trace.row(0)[0] > trace.row(0)[9]);
/// // The cache makes the second access free: still exactly 30 solves.
/// let again = scenario.thermal_trace()?;
/// assert_eq!(again.len(), 30);
/// assert_eq!(scenario.thermal_solve_count(), 30);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalTrace {
    times: Vec<Seconds>,
    ambients: Vec<Celsius>,
    // Structure-of-arrays storage: `width` consecutive entries per sample in
    // one contiguous buffer, rather than one heap allocation per sample.
    // The solve loop streams rows cache-linearly and `row(i)`/`deltas(i)`
    // hand out strided slices, so the per-step hot path of every session
    // walks a single flat allocation.
    rows: Vec<f64>,
    // Scheme-independent derived quantities, precomputed once so N lockstep
    // sessions do not redo them N times per sample (same strided layout).
    deltas: Vec<TemperatureDelta>,
    ideal: Vec<Watts>,
    width: usize,
    step: Seconds,
}

impl ThermalTrace {
    /// Solves the radiator model for every sample of the scenario's drive
    /// cycle.  Normally reached through [`Scenario::thermal_trace`], which
    /// caches the result; each sample solved is counted against the
    /// scenario's [`Scenario::thermal_solve_count`].
    ///
    /// The loop writes each sample's temperatures and ΔT values straight
    /// into the trace's strided buffers, so it performs no per-sample heap
    /// allocation — the buffers are reserved once for the whole cycle.
    ///
    /// In [`KernelMode::BitExact`] (the scenario default) the arithmetic
    /// (profile evaluation order, ΔT clamping, ideal-power sum) is identical
    /// to the historical row-per-`Vec` layout, so solved traces are
    /// bit-identical to earlier revisions.  In [`KernelMode::Fast`] the
    /// radiator effectiveness uses the one-`powf` cross-flow relation and the
    /// strided fill uses the geometric-recurrence sampler; the result agrees
    /// with the reference within the documented `1e-9` relative bound but is
    /// not bit-identical, which is why the mode is part of the trace-cache
    /// key.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Thermal`] from the radiator solve and
    /// [`SimError::Array`] from the ideal-power bound.
    pub fn solve(scenario: &Scenario) -> Result<Self, SimError> {
        Self::solve_with_threads(scenario, 1)
    }

    /// Like [`ThermalTrace::solve`], but splits the cycle into fixed
    /// 32-sample chunks executed across `threads` scoped threads.
    ///
    /// Every sample's value depends only on that sample's drive-cycle entry,
    /// and each chunk writes a disjoint strided range of the trace buffers,
    /// so the solved trace is bit-identical to the serial loop for any
    /// thread count — the chunk boundaries are a pure function of the cycle
    /// length, never of `threads`.  `threads <= 1` runs the chunks in order
    /// on the calling thread.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Thermal`] from the radiator solve and
    /// [`SimError::Array`] from the ideal-power bound.  When several chunks
    /// fail, the error of the earliest failing sample is returned, matching
    /// what the serial loop would have reported.
    pub fn solve_with_threads(scenario: &Scenario, threads: usize) -> Result<Self, SimError> {
        Self::solve_chunked(scenario, threads, SOLVE_CHUNK)
    }

    /// [`ThermalTrace::solve_with_threads`] with an explicit chunk size, so
    /// the equivalence tests can probe arbitrary chunk boundaries.  Not part
    /// of the public API.
    #[doc(hidden)]
    pub fn solve_chunked(
        scenario: &Scenario,
        threads: usize,
        chunk: usize,
    ) -> Result<Self, SimError> {
        let cycle: &DriveCycle = scenario.drive_cycle();
        let mode: KernelMode = scenario.kernel_mode();
        let width = scenario.placement().module_count();
        let len = cycle.len();
        let chunk = chunk.max(1);

        let mut times = vec![Seconds::ZERO; len];
        let mut ambients = vec![Celsius::new(0.0); len];
        let mut rows = vec![0.0; len * width];
        let mut deltas = vec![TemperatureDelta::ZERO; len * width];
        let mut ideal = vec![Watts::ZERO; len];

        let samples = cycle.samples();
        let jobs: Vec<Chunk<'_>> = samples
            .chunks(chunk)
            .zip(times.chunks_mut(chunk))
            .zip(ambients.chunks_mut(chunk))
            .zip(rows.chunks_mut(chunk * width))
            .zip(deltas.chunks_mut(chunk * width))
            .zip(ideal.chunks_mut(chunk))
            .enumerate()
            .map(
                |(i, (((((samples, times), ambients), rows), deltas), ideal))| Chunk {
                    base: i * chunk,
                    samples,
                    times,
                    ambients,
                    rows,
                    deltas,
                    ideal,
                },
            )
            .collect();

        let workers = threads.min(jobs.len()).max(1);
        if workers <= 1 {
            for job in jobs {
                Self::solve_chunk(scenario, mode, width, job).map_err(|(_, e)| e)?;
            }
        } else {
            let queue = Mutex::new(jobs.into_iter());
            // The earliest failing sample, so the parallel path reports the
            // same error the serial loop would have stopped at.
            let failure: Mutex<Option<(usize, SimError)>> = Mutex::new(None);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let Some(job) = queue.lock().expect("queue poisoned").next() else {
                            break;
                        };
                        if let Err((index, error)) = Self::solve_chunk(scenario, mode, width, job) {
                            let mut slot = failure.lock().expect("failure slot poisoned");
                            if slot.as_ref().is_none_or(|(held, _)| index < *held) {
                                *slot = Some((index, error));
                            }
                            break;
                        }
                    });
                }
            });
            if let Some((_, error)) = failure.into_inner().expect("failure slot poisoned") {
                return Err(error);
            }
        }

        Ok(Self {
            times,
            ambients,
            rows,
            deltas,
            ideal,
            width,
            step: scenario.step(),
        })
    }

    /// Solves one chunk's samples into its disjoint buffer slices.  On
    /// failure returns the absolute index of the first failing sample so the
    /// caller can pick the earliest error across chunks.
    fn solve_chunk(
        scenario: &Scenario,
        mode: KernelMode,
        width: usize,
        job: Chunk<'_>,
    ) -> Result<(), (usize, SimError)> {
        let fast = mode.is_fast();
        let array = scenario.array();
        let placement = scenario.placement();
        for (offset, sample) in job.samples.iter().enumerate() {
            let index = job.base + offset;
            let fail = |e: SimError| (index, e);
            let profile = scenario
                .radiator()
                .surface_profile_with_mode(&sample.coolant(), &sample.ambient(), mode)
                .map_err(|e| fail(e.into()))?;
            let row = &mut job.rows[offset * width..(offset + 1) * width];
            if fast {
                profile.sample_into_fast_slice(placement, row);
            } else {
                profile.sample_into_slice(placement, row);
            }
            scenario.count_thermal_solve();
            let ambient = sample.ambient().temperature();
            let delta = &mut job.deltas[offset * width..(offset + 1) * width];
            TelemetryWindow::deltas_from_row_into_slice(row, ambient, delta);
            job.ideal[offset] = ideal_power(array.modules(), delta).map_err(|e| fail(e.into()))?;
            job.times[offset] = sample.time();
            job.ambients[offset] = ambient;
        }
        Ok(())
    }

    /// Copies the `[start, end)` sample range into a standalone trace.
    ///
    /// [`DriveCycle::window`] keeps the original sample timestamps, so the
    /// result is bit-identical to freshly solving the windowed cycle — the
    /// basis for [`Scenario::window`] reusing the parent's solved trace.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub(crate) fn slice(&self, start: usize, end: usize) -> Self {
        Self {
            times: self.times[start..end].to_vec(),
            ambients: self.ambients[start..end].to_vec(),
            rows: self.rows[start * self.width..end * self.width].to_vec(),
            deltas: self.deltas[start * self.width..end * self.width].to_vec(),
            ideal: self.ideal[start..end].to_vec(),
            width: self.width,
            step: self.step,
        }
    }

    /// Number of solved samples (one per drive-cycle second).
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` for a trace over an empty drive cycle.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Number of modules per sample (the stride of [`ThermalTrace::row`] and
    /// [`ThermalTrace::deltas`] slices).
    #[inline]
    #[must_use]
    pub const fn width(&self) -> usize {
        self.width
    }

    /// The sampling step the trace was solved at.
    #[inline]
    #[must_use]
    pub const fn step(&self) -> Seconds {
        self.step
    }

    /// Simulation time of the `index`-th sample.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    #[must_use]
    pub fn time(&self, index: usize) -> Seconds {
        self.times[index]
    }

    /// Per-module surface temperatures (°C) at the `index`-th sample — a
    /// `width`-long slice into the trace's contiguous storage.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    #[must_use]
    pub fn row(&self, index: usize) -> &[f64] {
        &self.rows[index * self.width..(index + 1) * self.width]
    }

    /// Ambient (heatsink) temperature at the `index`-th sample.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    #[must_use]
    pub fn ambient(&self, index: usize) -> Celsius {
        self.ambients[index]
    }

    /// Per-module ΔT against the ambient (clamped at zero) at the `index`-th
    /// sample — precomputed once and shared by every scheme.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    #[must_use]
    pub fn deltas(&self, index: usize) -> &[TemperatureDelta] {
        &self.deltas[index * self.width..(index + 1) * self.width]
    }

    /// The unconstrained upper bound `P_ideal` (sum of module MPPs) at the
    /// `index`-th sample.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    #[must_use]
    pub fn ideal(&self, index: usize) -> Watts {
        self.ideal[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(modules: usize, seconds: usize, seed: u64) -> Scenario {
        Scenario::builder()
            .module_count(modules)
            .duration_seconds(seconds)
            .seed(seed)
            .build()
            .expect("valid scenario")
    }

    #[test]
    fn trace_covers_the_whole_cycle() {
        let s = scenario(12, 40, 3);
        let trace = s.thermal_trace().unwrap();
        assert_eq!(trace.len(), 40);
        assert!(!trace.is_empty());
        assert_eq!(trace.step(), s.step());
        assert_eq!(trace.row(0).len(), 12);
        assert_eq!(trace.time(5), Seconds::new(5.0));
        assert!(trace.ambient(0).value() > 0.0);
    }

    #[test]
    fn cache_solves_each_sample_exactly_once() {
        let s = scenario(8, 25, 9);
        assert_eq!(s.thermal_solve_count(), 0);
        let _ = s.thermal_trace().unwrap();
        let _ = s.thermal_trace().unwrap();
        let _ = s.thermal_trace().unwrap();
        assert_eq!(s.thermal_solve_count(), 25);
    }

    #[test]
    fn clones_share_an_already_solved_trace() {
        let s = scenario(6, 15, 4);
        let _ = s.thermal_trace().unwrap();
        let cloned = s.clone();
        let _ = cloned.thermal_trace().unwrap();
        // The clone reuses the solved trace: no further solves counted.
        assert_eq!(cloned.thermal_solve_count(), 15);
    }

    #[test]
    fn clones_made_before_the_solve_also_share_it() {
        // The cache cell sits behind an Arc, so even a clone taken while
        // the trace is still unsolved shares the eventual solve.
        let s = scenario(6, 15, 4);
        let cloned = s.clone();
        let _ = s.thermal_trace().unwrap();
        let _ = cloned.thermal_trace().unwrap();
        assert_eq!(s.thermal_solve_count(), 15);
    }

    #[test]
    fn windowing_slices_an_already_solved_parent_trace() {
        let s = scenario(6, 50, 4);
        let _ = s.thermal_trace().unwrap();
        let w = s.window(10, 30).unwrap();
        let trace = w.thermal_trace().unwrap();
        assert_eq!(trace.len(), 20);
        // The window reuses the parent's solved samples instead of
        // re-running the radiator over its sub-range: the shared counter
        // still reads the parent's 50 solves, nothing more.
        assert_eq!(s.thermal_solve_count(), 50);
    }

    #[test]
    fn windowing_an_unsolved_parent_solves_only_the_window() {
        let s = scenario(6, 50, 4);
        let w = s.window(10, 30).unwrap();
        let trace = w.thermal_trace().unwrap();
        assert_eq!(trace.len(), 20);
        // Nothing to slice yet: the window solves its own 20-sample cycle.
        assert_eq!(s.thermal_solve_count(), 20);
    }

    #[test]
    fn sliced_window_trace_matches_a_fresh_window_solve_bit_for_bit() {
        // `DriveCycle::window` keeps the original timestamps, so slicing the
        // parent's solved trace must reproduce exactly what solving the
        // windowed cycle from scratch produces — every row, delta, ideal
        // power, timestamp and ambient down to the last bit.
        for mode in [KernelMode::BitExact, KernelMode::Fast] {
            let build = || {
                Scenario::builder()
                    .module_count(9)
                    .duration_seconds(60)
                    .seed(13)
                    .kernel_mode(mode)
                    .build()
                    .expect("valid scenario")
            };
            let solved_parent = build();
            let _ = solved_parent.thermal_trace().unwrap();
            let sliced = solved_parent.window(15, 45).unwrap();
            let fresh = build().window(15, 45).unwrap();
            let a = sliced.thermal_trace().unwrap();
            let b = fresh.thermal_trace().unwrap();
            assert_eq!(a, b, "{mode:?}");
            assert_eq!(a.time(0), Seconds::new(15.0), "window keeps timestamps");
            for i in 0..a.len() {
                for (x, y) in a.row(i).iter().zip(b.row(i)) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{mode:?} row {i}");
                }
                assert_eq!(a.ideal(i), b.ideal(i), "{mode:?} ideal {i}");
            }
        }
    }

    #[test]
    fn strided_rows_match_a_fresh_per_sample_solve() {
        // The SoA buffers must hand out exactly the values the radiator
        // produces for each sample, and the deltas must match
        // `TelemetryWindow::deltas_from_row` bit for bit.
        use teg_reconfig::TelemetryWindow;

        let s = scenario(9, 12, 6);
        let trace = s.thermal_trace().unwrap();
        assert_eq!(trace.width(), 9);
        for (i, sample) in s.drive_cycle().iter().enumerate() {
            let profile = s
                .radiator()
                .surface_profile(&sample.coolant(), &sample.ambient())
                .unwrap();
            let fresh: Vec<f64> = profile
                .sample(s.placement())
                .iter()
                .map(|t| t.value())
                .collect();
            let row = trace.row(i);
            assert_eq!(row.len(), 9);
            for (a, b) in fresh.iter().zip(row) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
            }
            let fresh_deltas =
                TelemetryWindow::deltas_from_row(row, sample.ambient().temperature());
            assert_eq!(fresh_deltas.as_slice(), trace.deltas(i), "deltas {i}");
        }
    }

    #[test]
    fn chunked_parallel_solve_equals_the_serial_solve() {
        // 100 samples spans several SOLVE_CHUNK boundaries plus a ragged
        // tail; every thread count must produce the identical trace value.
        let s = scenario(7, 100, 8);
        let serial = ThermalTrace::solve(&s).unwrap();
        for threads in [2, 3, 4, 9] {
            let parallel = ThermalTrace::solve_with_threads(&s, threads).unwrap();
            assert_eq!(serial, parallel, "{threads} threads");
        }
        // Chunk size overrides (including degenerate ones) cannot move the
        // values either — boundaries only partition the work.
        for chunk in [1, 7, 100, 1000] {
            let chunked = ThermalTrace::solve_chunked(&s, 4, chunk).unwrap();
            assert_eq!(serial, chunked, "chunk size {chunk}");
        }
    }

    #[test]
    fn presolve_populates_the_scenario_and_reports_who_solved() {
        let s = scenario(6, 30, 2);
        assert!(s.presolve(4).unwrap(), "first presolve runs the solve");
        assert!(!s.presolve(4).unwrap(), "second presolve finds it done");
        assert_eq!(s.thermal_solve_count(), 30);
        let trace = s.thermal_trace().unwrap();
        assert_eq!(trace.len(), 30);
        // Still exactly one solve: thermal_trace() reused the presolved one.
        assert_eq!(s.thermal_solve_count(), 30);
    }

    #[test]
    fn temperatures_decay_along_the_radiator() {
        let s = scenario(20, 10, 7);
        let trace = s.thermal_trace().unwrap();
        for i in 0..trace.len() {
            let row = trace.row(i);
            assert!(row[0] > row[19], "entrance hotter than exit at step {i}");
        }
    }
}
