//! The solved thermal history of a scenario, computed once and shared.
//!
//! Earlier revisions re-ran the ε-NTU radiator solve inside every
//! [`SimulationEngine::run`], so comparing the paper's four schemes solved
//! the identical thermal problem four times.  [`ThermalTrace`] hoists that
//! work out of the simulation loop: it is computed lazily, cached on the
//! [`Scenario`], and borrowed by every session and comparison that replays
//! the same drive cycle.
//!
//! [`SimulationEngine::run`]: crate::SimulationEngine::run
//! [`Scenario`]: crate::Scenario

use teg_array::ideal_power;
use teg_reconfig::TelemetryWindow;
use teg_thermal::DriveCycle;
use teg_units::{Celsius, KernelMode, Seconds, TemperatureDelta, Watts};

use crate::error::SimError;
use crate::scenario::Scenario;

/// Per-module surface temperatures (and the ambient) for every sample of a
/// scenario's drive cycle — the radiator model solved exactly once.
///
/// # Examples
///
/// ```
/// use teg_sim::Scenario;
///
/// # fn main() -> Result<(), teg_sim::SimError> {
/// let scenario = Scenario::builder().module_count(10).duration_seconds(30).seed(1).build()?;
/// let trace = scenario.thermal_trace()?;
/// assert_eq!(trace.len(), 30);
/// // The entrance module is hotter than the exit module at every step.
/// assert!(trace.row(0)[0] > trace.row(0)[9]);
/// // The cache makes the second access free: still exactly 30 solves.
/// let again = scenario.thermal_trace()?;
/// assert_eq!(again.len(), 30);
/// assert_eq!(scenario.thermal_solve_count(), 30);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalTrace {
    times: Vec<Seconds>,
    ambients: Vec<Celsius>,
    // Structure-of-arrays storage: `width` consecutive entries per sample in
    // one contiguous buffer, rather than one heap allocation per sample.
    // The solve loop streams rows cache-linearly and `row(i)`/`deltas(i)`
    // hand out strided slices, so the per-step hot path of every session
    // walks a single flat allocation.
    rows: Vec<f64>,
    // Scheme-independent derived quantities, precomputed once so N lockstep
    // sessions do not redo them N times per sample (same strided layout).
    deltas: Vec<TemperatureDelta>,
    ideal: Vec<Watts>,
    width: usize,
    step: Seconds,
}

impl ThermalTrace {
    /// Solves the radiator model for every sample of the scenario's drive
    /// cycle.  Normally reached through [`Scenario::thermal_trace`], which
    /// caches the result; each sample solved is counted against the
    /// scenario's [`Scenario::thermal_solve_count`].
    ///
    /// The loop writes each sample's temperatures and ΔT values straight
    /// into the trace's strided buffers, so it performs no per-sample heap
    /// allocation — the buffers are reserved once for the whole cycle.
    ///
    /// In [`KernelMode::BitExact`] (the scenario default) the arithmetic
    /// (profile evaluation order, ΔT clamping, ideal-power sum) is identical
    /// to the historical row-per-`Vec` layout, so solved traces are
    /// bit-identical to earlier revisions.  In [`KernelMode::Fast`] the
    /// radiator effectiveness uses the one-`powf` cross-flow relation and the
    /// strided fill uses the geometric-recurrence sampler; the result agrees
    /// with the reference within the documented `1e-9` relative bound but is
    /// not bit-identical, which is why the mode is part of the trace-cache
    /// key.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError::Thermal`] from the radiator solve and
    /// [`SimError::Array`] from the ideal-power bound.
    pub fn solve(scenario: &Scenario) -> Result<Self, SimError> {
        let cycle: &DriveCycle = scenario.drive_cycle();
        let array = scenario.array();
        let placement = scenario.placement();
        let mode: KernelMode = scenario.kernel_mode();
        let fast = mode.is_fast();
        let width = placement.module_count();
        let mut times = Vec::with_capacity(cycle.len());
        let mut ambients = Vec::with_capacity(cycle.len());
        let mut rows = Vec::with_capacity(cycle.len() * width);
        let mut deltas = Vec::with_capacity(cycle.len() * width);
        let mut ideal = Vec::with_capacity(cycle.len());
        for sample in cycle.iter() {
            let profile = scenario.radiator().surface_profile_with_mode(
                &sample.coolant(),
                &sample.ambient(),
                mode,
            )?;
            let start = rows.len();
            if fast {
                profile.sample_into_fast(placement, &mut rows);
            } else {
                profile.sample_into(placement, &mut rows);
            }
            scenario.count_thermal_solve();
            let ambient = sample.ambient().temperature();
            TelemetryWindow::deltas_from_row_into(&rows[start..], ambient, &mut deltas);
            ideal.push(ideal_power(array.modules(), &deltas[start..])?);
            times.push(sample.time());
            ambients.push(ambient);
        }
        Ok(Self {
            times,
            ambients,
            rows,
            deltas,
            ideal,
            width,
            step: scenario.step(),
        })
    }

    /// Number of solved samples (one per drive-cycle second).
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Returns `true` for a trace over an empty drive cycle.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Number of modules per sample (the stride of [`ThermalTrace::row`] and
    /// [`ThermalTrace::deltas`] slices).
    #[inline]
    #[must_use]
    pub const fn width(&self) -> usize {
        self.width
    }

    /// The sampling step the trace was solved at.
    #[inline]
    #[must_use]
    pub const fn step(&self) -> Seconds {
        self.step
    }

    /// Simulation time of the `index`-th sample.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    #[must_use]
    pub fn time(&self, index: usize) -> Seconds {
        self.times[index]
    }

    /// Per-module surface temperatures (°C) at the `index`-th sample — a
    /// `width`-long slice into the trace's contiguous storage.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    #[must_use]
    pub fn row(&self, index: usize) -> &[f64] {
        &self.rows[index * self.width..(index + 1) * self.width]
    }

    /// Ambient (heatsink) temperature at the `index`-th sample.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    #[must_use]
    pub fn ambient(&self, index: usize) -> Celsius {
        self.ambients[index]
    }

    /// Per-module ΔT against the ambient (clamped at zero) at the `index`-th
    /// sample — precomputed once and shared by every scheme.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    #[must_use]
    pub fn deltas(&self, index: usize) -> &[TemperatureDelta] {
        &self.deltas[index * self.width..(index + 1) * self.width]
    }

    /// The unconstrained upper bound `P_ideal` (sum of module MPPs) at the
    /// `index`-th sample.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    #[inline]
    #[must_use]
    pub fn ideal(&self, index: usize) -> Watts {
        self.ideal[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(modules: usize, seconds: usize, seed: u64) -> Scenario {
        Scenario::builder()
            .module_count(modules)
            .duration_seconds(seconds)
            .seed(seed)
            .build()
            .expect("valid scenario")
    }

    #[test]
    fn trace_covers_the_whole_cycle() {
        let s = scenario(12, 40, 3);
        let trace = s.thermal_trace().unwrap();
        assert_eq!(trace.len(), 40);
        assert!(!trace.is_empty());
        assert_eq!(trace.step(), s.step());
        assert_eq!(trace.row(0).len(), 12);
        assert_eq!(trace.time(5), Seconds::new(5.0));
        assert!(trace.ambient(0).value() > 0.0);
    }

    #[test]
    fn cache_solves_each_sample_exactly_once() {
        let s = scenario(8, 25, 9);
        assert_eq!(s.thermal_solve_count(), 0);
        let _ = s.thermal_trace().unwrap();
        let _ = s.thermal_trace().unwrap();
        let _ = s.thermal_trace().unwrap();
        assert_eq!(s.thermal_solve_count(), 25);
    }

    #[test]
    fn clones_share_an_already_solved_trace() {
        let s = scenario(6, 15, 4);
        let _ = s.thermal_trace().unwrap();
        let cloned = s.clone();
        let _ = cloned.thermal_trace().unwrap();
        // The clone reuses the solved trace: no further solves counted.
        assert_eq!(cloned.thermal_solve_count(), 15);
    }

    #[test]
    fn clones_made_before_the_solve_also_share_it() {
        // The cache cell sits behind an Arc, so even a clone taken while
        // the trace is still unsolved shares the eventual solve.
        let s = scenario(6, 15, 4);
        let cloned = s.clone();
        let _ = s.thermal_trace().unwrap();
        let _ = cloned.thermal_trace().unwrap();
        assert_eq!(s.thermal_solve_count(), 15);
    }

    #[test]
    fn windowing_resolves_independently() {
        let s = scenario(6, 50, 4);
        let _ = s.thermal_trace().unwrap();
        let w = s.window(10, 30).unwrap();
        let trace = w.thermal_trace().unwrap();
        assert_eq!(trace.len(), 20);
        // The window re-solves its own (shorter) cycle; the counter is
        // shared with the parent, so 50 + 20 solves are recorded in total.
        assert_eq!(s.thermal_solve_count(), 70);
    }

    #[test]
    fn strided_rows_match_a_fresh_per_sample_solve() {
        // The SoA buffers must hand out exactly the values the radiator
        // produces for each sample, and the deltas must match
        // `TelemetryWindow::deltas_from_row` bit for bit.
        use teg_reconfig::TelemetryWindow;

        let s = scenario(9, 12, 6);
        let trace = s.thermal_trace().unwrap();
        assert_eq!(trace.width(), 9);
        for (i, sample) in s.drive_cycle().iter().enumerate() {
            let profile = s
                .radiator()
                .surface_profile(&sample.coolant(), &sample.ambient())
                .unwrap();
            let fresh: Vec<f64> = profile
                .sample(s.placement())
                .iter()
                .map(|t| t.value())
                .collect();
            let row = trace.row(i);
            assert_eq!(row.len(), 9);
            for (a, b) in fresh.iter().zip(row) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
            }
            let fresh_deltas =
                TelemetryWindow::deltas_from_row(row, sample.ambient().temperature());
            assert_eq!(fresh_deltas.as_slice(), trace.deltas(i), "deltas {i}");
        }
    }

    #[test]
    fn temperatures_decay_along_the_radiator() {
        let s = scenario(20, 10, 7);
        let trace = s.thermal_trace().unwrap();
        for i in 0..trace.len() {
            let row = trace.row(i);
            assert!(row[0] > row[19], "entrance hotter than exit at step {i}");
        }
    }
}
