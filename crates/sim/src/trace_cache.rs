//! Cross-scenario sharing of solved thermal traces.
//!
//! A sweep grid multiplies scenario samples along axes that do not all feed
//! the radiator model: every fault profile of a (module count, seed, drive)
//! coordinate replays *bit-identical* thermal inputs, yet each sample used
//! to run its own full ε-NTU solve.  [`TraceCache`] deduplicates that work:
//! scenarios attached to the same cache share one [`ThermalTrace`] per
//! distinct set of thermal inputs, keyed **by value** — drive cycle,
//! radiator, placement, step, kernel mode and the module parameters behind
//! the trace's `P_ideal` column — so two scenarios share a trace only when
//! every input that flows into the solve compares equal.  There is no lossy hashing on
//! the sharing decision (a 64-bit fingerprint only pre-filters candidates;
//! full equality always confirms), which keeps the cache inside the
//! repository's bit-exactness discipline: a cached trace is the same value a
//! fresh solve would produce, down to the last bit.
//!
//! The cache is `Arc`-shared and cheap to clone; [`ScenarioGrid`] attaches
//! one to every sample it builds (unless opted out), and long-lived callers
//! can thread one cache through many grids to share traces across sweeps.
//!
//! [`ScenarioGrid`]: crate::ScenarioGrid

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use teg_device::TegModule;
use teg_thermal::{DriveCycle, Radiator, SShapedPlacement};
use teg_units::{KernelMode, Seconds};

use crate::error::SimError;
use crate::scenario::Scenario;
use crate::thermal_trace::ThermalTrace;

/// Everything [`ThermalTrace::solve`] reads from a scenario, captured by
/// value.  Two scenarios with equal keys solve to bit-identical traces, so
/// they may share one.
///
/// Equality is exact structural equality of the inputs (IEEE bit semantics
/// through `f64::eq`: a NaN anywhere simply never matches, degrading to a
/// private solve rather than a wrong share).  The precomputed fingerprint is
/// a fast reject only — full equality is always confirmed before sharing.
pub(crate) struct ThermalKey {
    fingerprint: u64,
    // The kernel mode is a *solve input*: a fast-lane trace is within
    // tolerance of — but not bit-identical to — the bit-exact trace for the
    // same physics, so the two must never alias in the cache.
    mode: KernelMode,
    step: Seconds,
    placement: SShapedPlacement,
    drive: DriveCycle,
    radiator: Radiator,
    modules: Vec<TegModule>,
}

impl ThermalKey {
    /// Captures the thermal inputs of a scenario.
    pub(crate) fn of(scenario: &Scenario) -> Self {
        let drive = scenario.drive_cycle().clone();
        let step = scenario.step();
        let placement = *scenario.placement();
        let mut fingerprint = 0xcbf2_9ce4_8422_2325_u64; // FNV-1a offset basis
        let mut mix = |word: u64| {
            for byte in word.to_le_bytes() {
                fingerprint = (fingerprint ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
            }
        };
        let mode = scenario.kernel_mode();
        mix(mode as u64);
        mix(placement.module_count() as u64);
        mix(step.value().to_bits());
        mix(drive.len() as u64);
        for sample in drive.iter() {
            mix(sample.coolant().inlet_temperature().value().to_bits());
            mix(sample.coolant().mass_flow().to_bits());
            mix(sample.ambient().temperature().value().to_bits());
            mix(sample.ambient().mass_flow().to_bits());
        }
        Self {
            fingerprint,
            mode,
            step,
            placement,
            drive,
            radiator: scenario.radiator().clone(),
            modules: scenario.array().modules().to_vec(),
        }
    }
}

impl PartialEq for ThermalKey {
    fn eq(&self, other: &Self) -> bool {
        self.fingerprint == other.fingerprint
            && self.mode == other.mode
            && self.step == other.step
            && self.placement == other.placement
            && self.modules == other.modules
            && self.radiator == other.radiator
            && self.drive == other.drive
    }
}

impl fmt::Debug for ThermalKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThermalKey")
            .field("fingerprint", &format_args!("{:016x}", self.fingerprint))
            .field("mode", &self.mode)
            .field("modules", &self.placement.module_count())
            .field("samples", &self.drive.len())
            .finish_non_exhaustive()
    }
}

/// One key's slot: the solve is serialised per key (not per cache), so two
/// workers arriving with *different* keys solve concurrently while two with
/// the same key race only for who runs it.
#[derive(Default)]
struct TraceCell {
    solve_lock: Mutex<()>,
    // Number of callers currently between "decided to solve (or wait on) this
    // entry" and "done with it".  Eviction skips entries with a non-zero
    // count: evicting one would detach the in-flight solve from the key, and
    // the next same-key request would run the whole radiator solve again.
    in_flight: AtomicUsize,
    trace: OnceLock<Arc<ThermalTrace>>,
}

/// Decrements a cell's in-flight count when the registered caller is done
/// with it — on every exit path, including a failed solve.
struct InFlightGuard<'a>(&'a AtomicUsize);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

#[derive(Default)]
struct CacheInner {
    // Linear scan over (fingerprint-prefiltered, fully compared) keys: a
    // grid holds a handful of distinct keys, and exact Vec lookup avoids
    // putting f64-derived hashes on the correctness path.  The Vec doubles
    // as the LRU order — least recently used at the front, so bounded
    // caches evict from index 0.
    entries: Mutex<Vec<(ThermalKey, Arc<TraceCell>)>>,
    // `None` = unbounded; `Some(0)` = cache nothing (every request solves
    // privately and counts a miss, never an eviction).
    capacity: Option<usize>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

/// An `Arc`-shared, input-keyed cache of solved [`ThermalTrace`]s.
///
/// Cloning shares the underlying storage.  Attach a cache to scenarios via
/// [`ScenarioBuilder::trace_cache`](crate::ScenarioBuilder::trace_cache) —
/// or let [`ScenarioGrid`](crate::ScenarioGrid) do it, which it does by
/// default — and every attached scenario whose thermal inputs compare equal
/// resolves to the same solved trace, radiator model run exactly once.
///
/// # Examples
///
/// ```
/// use teg_sim::{Scenario, TraceCache};
///
/// # fn main() -> Result<(), teg_sim::SimError> {
/// let cache = TraceCache::new();
/// let build = |cache: &TraceCache| {
///     Scenario::builder()
///         .module_count(8)
///         .duration_seconds(20)
///         .seed(7)
///         .trace_cache(cache.clone())
///         .build()
/// };
/// let a = build(&cache)?;
/// let b = build(&cache)?;
/// a.thermal_trace()?;
/// b.thermal_trace()?;
/// // One key, one solve: the second scenario shared the first's trace.
/// assert_eq!(cache.len(), 1);
/// assert_eq!(cache.misses(), 1);
/// assert_eq!(cache.hits(), 1);
/// assert_eq!(a.thermal_solve_count() + b.thermal_solve_count(), 20);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Default)]
pub struct TraceCache {
    inner: Arc<CacheInner>,
}

impl TraceCache {
    /// Creates an empty cache with no capacity bound (entries are retained
    /// until [`TraceCache::clear`]).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache holding at most `capacity` entries, evicting
    /// the least recently used entry when a new key would exceed the bound.
    /// A capacity of `0` means *cache nothing*: every request runs its own
    /// private solve and counts as a miss, no entry is ever stored, and the
    /// evictions counter stays at zero (nothing is admitted, so nothing is
    /// evicted).  For an unbounded cache use [`TraceCache::new`].
    ///
    /// Eviction releases only the cache's references: scenarios holding an
    /// evicted trace keep it alive through their own `Arc` handle, and a
    /// solve in flight on an evicted entry completes into that entry's
    /// private slot.  A later request for an evicted key re-solves — counted
    /// as a miss, with [`TraceCache::evictions`] recording each eviction.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Arc::new(CacheInner {
                capacity: Some(capacity),
                ..CacheInner::default()
            }),
        }
    }

    /// The cache's entry bound, or `None` when unbounded.  `Some(0)` is the
    /// cache-nothing configuration.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.inner.capacity
    }

    /// Number of entries evicted to keep the cache within its capacity
    /// (always zero for unbounded caches).
    #[must_use]
    pub fn evictions(&self) -> usize {
        self.inner.evictions.load(Ordering::Relaxed)
    }

    /// Number of distinct thermal keys the cache has seen.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries().len()
    }

    /// Returns `true` while no scenario has resolved a trace through the
    /// cache.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of trace requests answered from an already-solved entry.
    #[must_use]
    pub fn hits(&self) -> usize {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Number of trace requests that had to run the radiator solve.
    #[must_use]
    pub fn misses(&self) -> usize {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Drops every cached entry (keys and solved traces), keeping the
    /// hit/miss counters.  Scenarios that already resolved their trace keep
    /// their own `Arc` handle, so clearing never invalidates running work —
    /// it only releases the cache's references.
    ///
    /// An unbounded cache (the default) never evicts on its own: each entry
    /// retains its key (a drive-cycle and module-parameter clone) and the
    /// solved trace for as long as the cache lives.  A long-lived caller
    /// sweeping an unbounded stream of *distinct* keys should either clear
    /// between phases or build the cache with
    /// [`TraceCache::with_capacity`] — within one grid, or a family of
    /// grids over one parameter space, the entry count stays small and
    /// lookups stay cheap.
    pub fn clear(&self) {
        self.entries().clear();
    }

    fn entries(&self) -> std::sync::MutexGuard<'_, Vec<(ThermalKey, Arc<TraceCell>)>> {
        self.inner
            .entries
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Resolves the scenario's trace through the cache: an equal key's
    /// already-solved trace when one exists, a fresh solve (performed and
    /// counted by *this* scenario) otherwise.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from [`ThermalTrace::solve`]; a failed solve
    /// leaves the entry unsolved, so a later caller retries rather than
    /// inheriting the failure.
    pub(crate) fn trace_for(&self, scenario: &Scenario) -> Result<Arc<ThermalTrace>, SimError> {
        // Capacity 0: cache nothing.  Solve privately without touching the
        // entry list — admitting a key only to evict it in the same breath
        // would report phantom evictions and serialise unrelated solves.
        if self.inner.capacity == Some(0) {
            let solved = Arc::new(ThermalTrace::solve(scenario)?);
            self.inner.misses.fetch_add(1, Ordering::Relaxed);
            return Ok(solved);
        }
        self.resolve(scenario, 1).map(|(trace, _)| trace)
    }

    /// Solves the scenario's trace into the cache ahead of demand, splitting
    /// the solve across `threads` chunk workers (see
    /// [`ThermalTrace::solve_with_threads`]).  Returns `true` when *this*
    /// call performed the solve, `false` when an equal key was already solved
    /// (or being solved by another caller).  A cache-nothing configuration
    /// (`with_capacity(0)`) has nothing to pre-populate, so the call is a
    /// no-op returning `false`.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the solve; the entry is left unsolved so
    /// a later demand-path request retries.
    pub(crate) fn presolve_for(
        &self,
        scenario: &Scenario,
        threads: usize,
    ) -> Result<bool, SimError> {
        if self.inner.capacity == Some(0) {
            return Ok(false);
        }
        self.resolve(scenario, threads).map(|(_, solved)| solved)
    }

    /// The shared lookup-or-solve path behind [`TraceCache::trace_for`] and
    /// [`TraceCache::presolve_for`].  The boolean reports whether this call
    /// ran the solve.
    fn resolve(
        &self,
        scenario: &Scenario,
        threads: usize,
    ) -> Result<(Arc<ThermalTrace>, bool), SimError> {
        let key = ThermalKey::of(scenario);
        let (cell, registered) = {
            let mut entries = self.entries();
            let cell = match entries.iter().position(|(k, _)| *k == key) {
                Some(pos) => {
                    // Refresh recency: the touched entry moves to the back,
                    // so bounded caches evict the *least* recently used key.
                    let entry = entries.remove(pos);
                    let cell = Arc::clone(&entry.1);
                    entries.push(entry);
                    cell
                }
                None => {
                    let cell = Arc::new(TraceCell::default());
                    entries.push((key, Arc::clone(&cell)));
                    cell
                }
            };
            // Register as in-flight *before* releasing the entries lock: an
            // unsolved entry stays pinned against eviction from here until
            // the guard drops, so a concurrent flood of other keys cannot
            // detach a solve that is about to populate this entry.
            let registered = cell.trace.get().is_none();
            if registered {
                cell.in_flight.fetch_add(1, Ordering::AcqRel);
            }
            Self::enforce_capacity(&self.inner, &mut entries);
            (cell, registered)
        };
        let in_flight = registered.then(|| InFlightGuard(&cell.in_flight));
        if let Some(trace) = cell.trace.get() {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(trace), false));
        }
        let guard = cell
            .solve_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(trace) = cell.trace.get() {
            drop(guard);
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((Arc::clone(trace), false));
        }
        let solved = Arc::new(ThermalTrace::solve_with_threads(scenario, threads)?);
        let stored = Arc::clone(cell.trace.get_or_init(|| Arc::clone(&solved)));
        drop(guard);
        drop(in_flight);
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        Ok((stored, true))
    }

    /// Evicts least-recently-used entries until the cache fits its bound,
    /// skipping entries whose solve is in flight (evicting one would detach
    /// the running solve from its key and force a same-key successor to
    /// re-run the whole radiator solve).  When every candidate is pinned the
    /// cache temporarily exceeds its bound; the next insertion retries.
    fn enforce_capacity(inner: &CacheInner, entries: &mut Vec<(ThermalKey, Arc<TraceCell>)>) {
        let Some(capacity) = inner.capacity else {
            return;
        };
        while entries.len() > capacity {
            let evictable = entries
                .iter()
                .position(|(_, cell)| cell.in_flight.load(Ordering::Acquire) == 0);
            match evictable {
                Some(pos) => {
                    entries.remove(pos);
                    inner.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// Number of entries whose solve is currently in flight (pinned against
    /// eviction).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.entries()
            .iter()
            .filter(|(_, cell)| cell.in_flight.load(Ordering::Acquire) > 0)
            .count()
    }
}

impl fmt::Debug for TraceCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceCache")
            .field("keys", &self.len())
            .field("capacity", &self.capacity())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, FaultSeverity};
    use crate::scenario::ScenarioBuilder;
    use teg_device::VariationModel;

    fn builder(modules: usize, seconds: usize, seed: u64, cache: &TraceCache) -> ScenarioBuilder {
        Scenario::builder()
            .module_count(modules)
            .duration_seconds(seconds)
            .seed(seed)
            .trace_cache(cache.clone())
    }

    #[test]
    fn equal_inputs_share_one_solve() {
        let cache = TraceCache::new();
        let a = builder(6, 15, 3, &cache).build().unwrap();
        let b = builder(6, 15, 3, &cache).build().unwrap();
        let ta = a.thermal_trace().unwrap().clone();
        let tb = b.thermal_trace().unwrap().clone();
        assert_eq!(ta, tb);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 1);
        // Only the solving scenario counted radiator work.
        assert_eq!(a.thermal_solve_count(), 15);
        assert_eq!(b.thermal_solve_count(), 0);
    }

    #[test]
    fn fault_plans_do_not_split_keys_but_physics_inputs_do() {
        let cache = TraceCache::new();
        let healthy = builder(8, 10, 1, &cache).build().unwrap();
        let degraded = builder(8, 10, 1, &cache)
            .fault_plan(FaultPlan::random(8, 10, FaultSeverity::severe(), 9))
            .build()
            .unwrap();
        let other_seed = builder(8, 10, 2, &cache).build().unwrap();
        let other_size = builder(9, 10, 1, &cache).build().unwrap();
        let varied = builder(8, 10, 1, &cache)
            .module_variation(VariationModel::new(0.05, 0.05).unwrap())
            .build()
            .unwrap();
        for s in [&healthy, &degraded, &other_seed, &other_size, &varied] {
            s.thermal_trace().unwrap();
        }
        // healthy + degraded share; seed, module count and variation (which
        // changes the modules behind P_ideal) each get their own key.
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 4);
    }

    #[test]
    fn kernel_modes_never_share_a_trace() {
        // A fast-lane trace is tolerance-equal, not bit-equal, to the
        // bit-exact trace of the same physics: the cache must keep them in
        // separate entries even when every other input matches.
        let cache = TraceCache::new();
        let exact = builder(8, 12, 5, &cache).build().unwrap();
        let fast = builder(8, 12, 5, &cache)
            .kernel_mode(KernelMode::Fast)
            .build()
            .unwrap();
        let exact_again = builder(8, 12, 5, &cache).build().unwrap();
        let te = exact.thermal_trace().unwrap().clone();
        let tf = fast.thermal_trace().unwrap().clone();
        exact_again.thermal_trace().unwrap();
        assert_eq!(cache.len(), 2, "one entry per kernel mode");
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 1, "same-mode scenario still shares");
        // The traces are close but not the same object/value.
        assert_ne!(te, tf);
        for i in 0..te.len() {
            for (a, b) in te.row(i).iter().zip(tf.row(i)) {
                assert!(teg_units::approx_eq(*a, *b, 1e-9), "sample {i}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn concurrent_same_key_scenarios_solve_once() {
        let cache = TraceCache::new();
        let scenarios: Vec<Scenario> = (0..8)
            .map(|_| builder(6, 20, 11, &cache).build().unwrap())
            .collect();
        std::thread::scope(|scope| {
            for s in &scenarios {
                scope.spawn(|| {
                    let trace = s.thermal_trace().unwrap();
                    assert_eq!(trace.len(), 20);
                });
            }
        });
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
        let solves: usize = scenarios.iter().map(Scenario::thermal_solve_count).sum();
        assert_eq!(solves, 20, "eight scenarios, one 20-sample solve");
    }

    #[test]
    fn clearing_releases_entries_but_not_outstanding_traces() {
        let cache = TraceCache::new();
        let a = builder(5, 10, 2, &cache).build().unwrap();
        let trace = a.thermal_trace().unwrap();
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        // The scenario's own handle survives; a new equal-keyed scenario
        // re-solves.
        assert_eq!(trace.len(), 10);
        let b = builder(5, 10, 2, &cache).build().unwrap();
        b.thermal_trace().unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn bounded_cache_evicts_least_recently_used() {
        let cache = TraceCache::with_capacity(2);
        assert_eq!(cache.capacity(), Some(2));
        // Distinct seeds → distinct thermal keys.
        let a = || builder(6, 10, 1, &cache).build().unwrap();
        let b = || builder(6, 10, 2, &cache).build().unwrap();
        let c = || builder(6, 10, 3, &cache).build().unwrap();
        a().thermal_trace().unwrap(); // [A]
        b().thermal_trace().unwrap(); // [A, B]
        assert_eq!(cache.evictions(), 0);
        a().thermal_trace().unwrap(); // hit refreshes A → [B, A]
        c().thermal_trace().unwrap(); // evicts B → [A, C]
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        a().thermal_trace().unwrap(); // still cached → [C, A]
        assert_eq!(cache.hits(), 2);
        b().thermal_trace().unwrap(); // re-solve, evicts C → [A, B]
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.misses(), 4, "A, B, C and the re-solved B");
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn eviction_does_not_invalidate_outstanding_traces() {
        let cache = TraceCache::with_capacity(1);
        let a = builder(5, 10, 1, &cache).build().unwrap();
        let trace = a.thermal_trace().unwrap().clone();
        builder(5, 10, 2, &cache)
            .build()
            .unwrap()
            .thermal_trace()
            .unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.evictions(), 1);
        // The first scenario's handle survives the eviction.
        assert_eq!(trace.len(), 10);
        assert_eq!(a.thermal_trace().unwrap(), &trace);
    }

    #[test]
    fn default_cache_is_unbounded() {
        let cache = TraceCache::new();
        assert_eq!(cache.capacity(), None);
        for seed in 0..5 {
            builder(5, 10, seed, &cache)
                .build()
                .unwrap()
                .thermal_trace()
                .unwrap();
        }
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn capacity_zero_caches_nothing() {
        // Regression: `with_capacity(0)` used to alias the unbounded cache.
        // It must mean "cache nothing": every request is a private solve and
        // a miss, nothing is stored, and no phantom evictions are counted.
        let cache = TraceCache::with_capacity(0);
        assert_eq!(cache.capacity(), Some(0));
        let a = builder(5, 10, 1, &cache).build().unwrap();
        let b = builder(5, 10, 1, &cache).build().unwrap();
        let ta = a.thermal_trace().unwrap().clone();
        let tb = b.thermal_trace().unwrap().clone();
        // Same inputs still solve to the same value — just not shared.
        assert_eq!(ta, tb);
        assert!(cache.is_empty(), "nothing is admitted");
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.evictions(), 0);
        // Both scenarios performed their own radiator work.
        assert_eq!(a.thermal_solve_count(), 10);
        assert_eq!(b.thermal_solve_count(), 10);
    }

    #[test]
    fn eviction_of_borrowed_entry_keeps_counters_coherent() {
        // Evicting an entry whose trace is still held by a live scenario
        // must not disturb the hit/miss/eviction accounting: the books must
        // balance (misses = solves, hits = shared reads, evictions = keys
        // pushed out) even while the evicted Arc is outstanding.
        let cache = TraceCache::with_capacity(1);
        let a = builder(5, 10, 1, &cache).build().unwrap();
        let held = a.thermal_trace().unwrap().clone(); // miss 1, entry [A]
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (0, 1, 0));
        // B evicts A while A's trace is borrowed.
        builder(5, 10, 2, &cache)
            .build()
            .unwrap()
            .thermal_trace()
            .unwrap(); // miss 2, evict A → [B]
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (0, 2, 1));
        assert_eq!(held.len(), 10, "the borrowed trace survives eviction");
        // Re-requesting A's key is a fresh miss (A is gone), evicting B —
        // the outstanding borrow must not make it a hit or skip the
        // eviction.
        let c = builder(5, 10, 1, &cache).build().unwrap();
        let resolved = c.thermal_trace().unwrap().clone();
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (0, 3, 2));
        assert_eq!(resolved, held, "the re-solve reproduces the same value");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn barrier_released_same_key_misses_solve_exactly_once() {
        // Eight workers released by a barrier all miss the same key at the
        // same instant on a *bounded* cache: the in-flight marker plus the
        // per-cell solve lock must still collapse them to one radiator
        // solve, with the seven losers counted as hits.
        use std::sync::Barrier;

        let cache = TraceCache::with_capacity(2);
        let scenarios: Vec<Scenario> = (0..8)
            .map(|_| builder(6, 20, 11, &cache).build().unwrap())
            .collect();
        let barrier = Barrier::new(8);
        std::thread::scope(|scope| {
            for s in &scenarios {
                scope.spawn(|| {
                    barrier.wait();
                    let trace = s.thermal_trace().unwrap();
                    assert_eq!(trace.len(), 20);
                });
            }
        });
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits(), 7);
        assert_eq!(cache.in_flight(), 0, "all guards released");
        let solves: usize = scenarios.iter().map(Scenario::thermal_solve_count).sum();
        assert_eq!(solves, 20, "eight simultaneous misses, one 20-sample solve");
    }

    #[test]
    fn eviction_skips_an_entry_whose_solve_is_in_flight() {
        // Regression: a capacity-bounded cache used to evict entries purely
        // by LRU position, so a flood of other keys arriving while a solve
        // was still running would detach that solve from its key and the
        // next same-key request re-ran the whole radiator solve.  The
        // in-flight marker pins the entry until the solve lands.
        let cache = TraceCache::with_capacity(1);
        // Big enough that the main thread reliably observes the solve in
        // flight on any scheduler.
        let slow = builder(40, 400, 1, &cache).build().unwrap();
        let mut observed_in_flight = false;
        std::thread::scope(|scope| {
            scope.spawn(|| {
                slow.thermal_trace().unwrap();
            });
            // Wait until the solver has registered (or, if the scheduler ran
            // it to completion already, until its miss is counted — the
            // pressure below then exercises plain LRU, not the regression).
            while cache.in_flight() == 0 && cache.misses() == 0 {
                std::thread::yield_now();
            }
            observed_in_flight = cache.in_flight() == 1;
            // Capacity pressure while the solve is (possibly) in flight.
            builder(6, 10, 2, &cache)
                .build()
                .unwrap()
                .thermal_trace()
                .unwrap();
            if observed_in_flight {
                // The pinned entry survived: the cache holds both keys even
                // though its bound is 1.
                assert_eq!(cache.len(), 2, "in-flight entry not evicted");
                assert_eq!(cache.evictions(), 0);
            }
        });
        if observed_in_flight {
            // Re-requesting the slow key shares the already-solved trace:
            // exactly one solve of its 400 samples ever runs.
            let again = builder(40, 400, 1, &cache).build().unwrap();
            again.thermal_trace().unwrap();
            assert_eq!(again.thermal_solve_count(), 0, "no second solve");
        }
        assert_eq!(cache.in_flight(), 0);
    }

    #[test]
    fn cache_is_send_sync_and_debuggable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceCache>();
        let cache = TraceCache::new();
        assert!(cache.is_empty());
        let text = format!("{cache:?}");
        assert!(text.contains("keys"), "{text}");
    }
}
