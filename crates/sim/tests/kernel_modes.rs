//! Session-level equivalence of the two kernel modes.
//!
//! The fast lane's per-kernel contracts (solver sums within `1e-9` relative,
//! EHTR partition and sensor noise bit-identical, thermal profile within
//! `1e-9`) are pinned in their own crates; this suite checks the property the
//! repository actually relies on: a whole simulation session run in
//! [`KernelMode::Fast`] reproduces the bit-exact session — same decisions,
//! same switch events, energies within a `1e-6` relative bound — across
//! arbitrary drive cycles, module counts and fault plans.

use proptest::prelude::*;
use teg_reconfig::{Dnor, Ehtr, Inor, Reconfigurer, StaticBaseline};
use teg_sim::{FaultPlan, FaultSeverity, RuntimePolicy, Scenario, SessionSummary, SimSession};
use teg_units::{KernelMode, Seconds};

/// Relative bound for session-level energy totals when the decision
/// sequences match: per-step solver outputs agree within `1e-9`, and
/// integrating a few hundred steps keeps the totals well inside `1e-6`.
const SESSION_TOLERANCE: f64 = 1e-6;

/// Relative bound once the fast solver's reordered sums have flipped a
/// decision between two candidates whose powers were within a few ulps of
/// each other.  Both sides of such a tie deliver near-identical *array*
/// power, but the alternative wiring sits at a different voltage, so the
/// charger efficiency — and with it the delivered-energy total — can move by
/// a few percent.
const DECISION_FLIP_TOLERANCE: f64 = 5e-2;

fn scenario(
    modules: usize,
    seconds: usize,
    seed: u64,
    faults: Option<u64>,
    mode: KernelMode,
) -> Scenario {
    let mut builder = Scenario::builder()
        .module_count(modules)
        .duration_seconds(seconds)
        .seed(seed)
        .kernel_mode(mode);
    if let Some(fault_seed) = faults {
        builder = builder.fault_plan(FaultPlan::random(
            modules,
            seconds,
            FaultSeverity::moderate(),
            fault_seed,
        ));
    }
    builder.build().expect("valid scenario")
}

fn run(scenario: &Scenario, scheme: &mut dyn Reconfigurer) -> SessionSummary {
    let mut session = SimSession::new(scenario, scheme)
        .expect("session opens")
        .with_runtime_policy(RuntimePolicy::Fixed(Seconds::new(0.002)));
    while session.step().expect("step succeeds").is_some() {}
    session.summary()
}

fn relative_close(a: f64, b: f64, tolerance: f64, context: &str) {
    let scale = a.abs().max(b.abs()).max(1e-12);
    assert!(
        (a - b).abs() <= tolerance * scale,
        "{context}: {a} vs {b} (relative {})",
        (a - b).abs() / scale
    );
}

fn assert_sessions_agree(exact: &SessionSummary, fast: &SessionSummary, tolerance: f64) {
    assert_eq!(exact.scheme(), fast.scheme());
    assert_eq!(exact.steps(), fast.steps());
    let scheme = exact.scheme();
    relative_close(
        exact.gross_energy().value(),
        fast.gross_energy().value(),
        tolerance,
        &format!("{scheme} gross energy"),
    );
    relative_close(
        exact.net_energy().value(),
        fast.net_energy().value(),
        tolerance,
        &format!("{scheme} net energy"),
    );
    relative_close(
        exact.delivered_energy().value(),
        fast.delivered_energy().value(),
        tolerance,
        &format!("{scheme} delivered energy"),
    );
    // The ideal column is pure thermal (no candidate selection), so it never
    // sees a decision flip and always holds the tight bound.
    relative_close(
        exact.ideal_energy().value(),
        fast.ideal_energy().value(),
        SESSION_TOLERANCE,
        &format!("{scheme} ideal energy"),
    );
}

fn schemes(modules: usize) -> Vec<Box<dyn Reconfigurer>> {
    vec![
        Box::new(StaticBaseline::square_grid(modules)),
        Box::new(Inor::default()),
        Box::new(Dnor::default()),
        Box::new(Ehtr::default()),
    ]
}

#[test]
fn fast_sessions_match_bit_exact_sessions_on_the_paper_presets() {
    for (modules, seconds, seed, faults) in [
        (40, 120, 7, None),
        (40, 120, 7, Some(3)),
        (25, 200, 11, None),
        (16, 150, 2, Some(9)),
    ] {
        let exact_scenario = scenario(modules, seconds, seed, faults, KernelMode::BitExact);
        let fast_scenario = scenario(modules, seconds, seed, faults, KernelMode::Fast);
        for (mut exact_scheme, mut fast_scheme) in
            schemes(modules).into_iter().zip(schemes(modules))
        {
            let exact = run(&exact_scenario, exact_scheme.as_mut());
            let fast = run(&fast_scenario, fast_scheme.as_mut());
            // On these pinned presets no candidate pair ties, so the switch
            // schedules must match exactly and the energies hold the tight
            // per-kernel bound.
            assert_eq!(
                exact.switch_count(),
                fast.switch_count(),
                "{} switch schedules diverged",
                exact.scheme()
            );
            assert_sessions_agree(&exact, &fast, SESSION_TOLERANCE);
        }
    }
}

#[test]
fn bit_exact_sessions_are_unchanged_by_the_fast_lane_existing() {
    // Two bit-exact sessions (one via the default, one spelled out) must
    // agree on every bit: introducing the mode plumbing cannot perturb the
    // reference lane.
    let default_mode = scenario(12, 60, 5, Some(4), KernelMode::default());
    let spelled_out = scenario(12, 60, 5, Some(4), KernelMode::BitExact);
    let mut a = Ehtr::default();
    let mut b = Ehtr::default();
    let run_records = |s: &Scenario, scheme: &mut dyn Reconfigurer| {
        let session = SimSession::new(s, scheme)
            .expect("session opens")
            .with_runtime_policy(RuntimePolicy::Fixed(Seconds::new(0.002)));
        let records: Result<Vec<_>, _> = session.collect();
        records.expect("run succeeds")
    };
    assert_eq!(
        run_records(&default_mode, &mut a),
        run_records(&spelled_out, &mut b)
    );
}

proptest! {
    #[test]
    fn fast_sessions_stay_within_tolerance_for_arbitrary_scenarios(
        modules in 4usize..32,
        seconds in 20usize..90,
        seed in 0u64..1000,
        fault_seed in 0u64..1000,
        faulted in 0usize..2,
        scheme_index in 0usize..4,
    ) {
        let faults = (faulted == 1).then_some(fault_seed);
        let exact_scenario = scenario(modules, seconds, seed, faults, KernelMode::BitExact);
        let fast_scenario = scenario(modules, seconds, seed, faults, KernelMode::Fast);
        let mut exact_scheme = schemes(modules).swap_remove(scheme_index);
        let mut fast_scheme = schemes(modules).swap_remove(scheme_index);
        let exact = run(&exact_scenario, exact_scheme.as_mut());
        let fast = run(&fast_scenario, fast_scheme.as_mut());
        // Arbitrary scenarios may hit exact candidate ties, so the schedules
        // are allowed to diverge and only the loose bound applies here; the
        // pinned presets above hold the tight bound and identical schedules.
        assert_sessions_agree(&exact, &fast, DECISION_FLIP_TOLERANCE);
    }
}
