//! Property tests for the two-level thermal parallelization added with the
//! sweep pre-solve planner.
//!
//! Two contracts are pinned to the bit:
//!
//! 1. **Row-parallel solve ≡ serial solve.**  `ThermalTrace::solve_chunked`
//!    splits the sample range into fixed chunks whose boundaries are a pure
//!    function of the cycle length, so any worker count and any chunk size
//!    must reproduce the serial trace exactly — every time, ambient, row,
//!    delta and ideal-power entry compared by `to_bits`.
//! 2. **Planner-on ≡ planner-off.**  The pre-solve planner only moves *when*
//!    traces are solved, never what they contain, so a sweep with the
//!    planner enabled must produce a `SweepReport` equal to the planner-off
//!    report at any worker count.
//!
//! The no-re-bless rule in TESTING.md leans on both properties: neither the
//! chunked solver nor the planner may move a golden.

use proptest::prelude::*;
use teg_reconfig::SchemeSpec;
use teg_sim::{
    FaultProfile, FaultSeverity, RuntimePolicy, Scenario, ScenarioGrid, SchemeLineup, SweepReport,
    SweepRunner, ThermalTrace,
};
use teg_units::{KernelMode, Seconds};

fn scenario(modules: usize, seconds: usize, seed: u64, mode: KernelMode) -> Scenario {
    Scenario::builder()
        .module_count(modules)
        .duration_seconds(seconds)
        .seed(seed)
        .kernel_mode(mode)
        .build()
        .expect("valid scenario")
}

fn assert_traces_bit_identical(serial: &ThermalTrace, chunked: &ThermalTrace, context: &str) {
    assert_eq!(serial.len(), chunked.len(), "{context}: length");
    for i in 0..serial.len() {
        assert_eq!(
            serial.time(i).value().to_bits(),
            chunked.time(i).value().to_bits(),
            "{context}: time {i}"
        );
        assert_eq!(
            serial.ambient(i).value().to_bits(),
            chunked.ambient(i).value().to_bits(),
            "{context}: ambient {i}"
        );
        for (j, (a, b)) in serial.row(i).iter().zip(chunked.row(i)).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "{context}: row {i} module {j}");
        }
        for (j, (a, b)) in serial.deltas(i).iter().zip(chunked.deltas(i)).enumerate() {
            assert_eq!(
                a.kelvin().to_bits(),
                b.kelvin().to_bits(),
                "{context}: delta {i} module {j}"
            );
        }
        assert_eq!(
            serial.ideal(i).value().to_bits(),
            chunked.ideal(i).value().to_bits(),
            "{context}: ideal {i}"
        );
    }
}

fn grid(modules: usize, seeds: [u64; 2], seconds: usize) -> ScenarioGrid {
    ScenarioGrid::builder()
        .module_counts([modules, modules + 2])
        .seeds(seeds)
        .duration_seconds(seconds)
        .faults([
            FaultProfile::none(),
            FaultProfile::random("moderate", FaultSeverity::moderate()),
        ])
        .lineups([SchemeLineup::fixed(
            "duo",
            vec![SchemeSpec::inor(), SchemeSpec::ehtr()],
        )])
        .build()
        .expect("valid grid")
}

fn run(grid: &ScenarioGrid, workers: usize, presolve: bool) -> SweepReport {
    SweepRunner::new()
        .workers(workers)
        .presolve(presolve)
        .runtime_policy(RuntimePolicy::Fixed(Seconds::new(0.002)))
        .run(grid)
        .expect("sweep succeeds")
}

proptest! {
    #[test]
    fn chunked_parallel_solve_is_bit_identical_to_the_serial_solve(
        modules in 4usize..24,
        seconds in 10usize..60,
        seed in 0u64..1000,
        threads in 1usize..9,
        chunk in 1usize..64,
        fast in 0usize..2,
    ) {
        let mode = if fast == 1 { KernelMode::Fast } else { KernelMode::BitExact };
        let s = scenario(modules, seconds, seed, mode);
        let serial = ThermalTrace::solve(&s).expect("serial solve");
        let chunked = ThermalTrace::solve_chunked(&s, threads, chunk).expect("chunked solve");
        assert_traces_bit_identical(
            &serial,
            &chunked,
            &format!("{modules}mod/{seconds}s/seed{seed} threads={threads} chunk={chunk} {mode:?}"),
        );
    }

    #[test]
    fn planner_on_report_equals_planner_off_at_one_and_four_workers(
        modules in 4usize..10,
        seed in 0u64..500,
        seconds in 4usize..9,
    ) {
        let seeds = [seed, seed + 1];
        for workers in [1usize, 4] {
            // Fresh grids per run so each pays its own thermal solves and
            // the reports' solve counters are comparable.
            let on = run(&grid(modules, seeds, seconds), workers, true);
            let off = run(&grid(modules, seeds, seconds), workers, false);
            assert_eq!(on, off, "workers={workers}");
            prop_assert!(on.presolve().is_some());
            prop_assert!(off.presolve().is_none());
        }
    }
}
