//! The 1-D surface-temperature profile along the radiator (Eq. 1 of the
//! paper) and helpers to sample it at TEG module positions.

use teg_units::{Celsius, Meters, TemperatureDelta};

use crate::error::ThermalError;
use crate::placement::SShapedPlacement;

/// The exponential surface-temperature profile
/// `T(d) = (T_h,i − T_c,a)·exp(−k·d) + T_c,a` along the radiator flow path.
///
/// `k = K / C_c` is the decay constant per metre.  A profile is produced by
/// [`Radiator::surface_profile`](crate::Radiator::surface_profile) for each
/// simulation step and then sampled at the module positions of an
/// [`SShapedPlacement`].
///
/// # Examples
///
/// ```
/// use teg_thermal::SurfaceProfile;
/// use teg_units::{Celsius, Meters};
///
/// # fn main() -> Result<(), teg_thermal::ThermalError> {
/// let profile = SurfaceProfile::new(
///     Celsius::new(95.0),
///     Celsius::new(30.0),
///     0.4,
///     Meters::new(3.2),
/// )?;
/// let entrance = profile.at_distance(Meters::new(0.0))?;
/// let exit = profile.at_distance(Meters::new(3.2))?;
/// assert!(entrance > exit);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfaceProfile {
    hot_inlet: Celsius,
    cold_mean: Celsius,
    decay_per_meter: f64,
    path_length: Meters,
}

impl SurfaceProfile {
    /// Creates a profile from the coolant inlet temperature, the mean air
    /// temperature, the decay constant (1/m) and the flow-path length.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvertedTemperatures`] if the inlet is not
    /// hotter than the mean air temperature, [`ThermalError::InvalidGeometry`]
    /// if the path length is not positive, and
    /// [`ThermalError::NonFiniteInput`] for NaN/infinite inputs or a negative
    /// decay constant.
    pub fn new(
        hot_inlet: Celsius,
        cold_mean: Celsius,
        decay_per_meter: f64,
        path_length: Meters,
    ) -> Result<Self, ThermalError> {
        if !hot_inlet.is_finite()
            || !cold_mean.is_finite()
            || !decay_per_meter.is_finite()
            || !path_length.is_finite()
        {
            return Err(ThermalError::NonFiniteInput {
                what: "surface profile",
            });
        }
        if decay_per_meter < 0.0 {
            return Err(ThermalError::NonFiniteInput {
                what: "decay constant",
            });
        }
        if hot_inlet.value() <= cold_mean.value() {
            return Err(ThermalError::InvertedTemperatures {
                coolant_c: hot_inlet.value(),
                ambient_c: cold_mean.value(),
            });
        }
        if path_length.value() <= 0.0 {
            return Err(ThermalError::InvalidGeometry {
                reason: "flow path length must be positive".to_owned(),
            });
        }
        Ok(Self {
            hot_inlet,
            cold_mean,
            decay_per_meter,
            path_length,
        })
    }

    /// Coolant inlet temperature `T_h,i`.
    #[must_use]
    pub const fn hot_inlet(&self) -> Celsius {
        self.hot_inlet
    }

    /// Mean air temperature `T_c,a` towards which the profile decays.
    #[must_use]
    pub const fn cold_mean(&self) -> Celsius {
        self.cold_mean
    }

    /// Decay constant `K / C_c` in 1/m.
    #[must_use]
    pub const fn decay_per_meter(&self) -> f64 {
        self.decay_per_meter
    }

    /// Total flow-path length covered by the profile.
    #[must_use]
    pub const fn path_length(&self) -> Meters {
        self.path_length
    }

    /// Surface temperature at a distance `d` from the radiator entrance.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PositionOutOfRange`] if `d` is negative or
    /// beyond the flow-path length.
    pub fn at_distance(&self, distance: Meters) -> Result<Celsius, ThermalError> {
        let frac = distance.value() / self.path_length.value();
        if !(0.0..=1.0 + 1e-12).contains(&frac) {
            return Err(ThermalError::PositionOutOfRange { fraction: frac });
        }
        Ok(self.evaluate(distance.value()))
    }

    /// Surface temperature at a fractional position along the path
    /// (`0.0` = entrance, `1.0` = exit).
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PositionOutOfRange`] if the fraction is outside
    /// `[0, 1]`.
    pub fn at_fraction(&self, fraction: f64) -> Result<Celsius, ThermalError> {
        if !(0.0..=1.0).contains(&fraction) {
            return Err(ThermalError::PositionOutOfRange { fraction });
        }
        Ok(self.evaluate(fraction * self.path_length.value()))
    }

    fn evaluate(&self, distance_m: f64) -> Celsius {
        let excess = self.hot_inlet.value() - self.cold_mean.value();
        Celsius::new(self.cold_mean.value() + excess * (-self.decay_per_meter * distance_m).exp())
    }

    /// Samples the profile at every module position of a placement, returning
    /// the hot-side temperature of each module (entrance-first order).
    ///
    /// This is a thin wrapper over [`SurfaceProfile::sample_into`] — one
    /// sampling loop exists, so the two can never drift apart.
    #[must_use]
    pub fn sample(&self, placement: &SShapedPlacement) -> Vec<Celsius> {
        let mut sampled = Vec::with_capacity(placement.module_count());
        self.sample_into(placement, &mut sampled);
        sampled.into_iter().map(Celsius::new).collect()
    }

    /// Appends the sampled hot-side temperatures (°C, entrance-first) to an
    /// existing buffer instead of allocating a fresh vector — the allocation-
    /// free path the per-sample thermal solve loop writes its strided trace
    /// rows through.  Performs exactly the same evaluations in the same order
    /// as [`SurfaceProfile::sample`], so the two are bit-identical.
    pub fn sample_into(&self, placement: &SShapedPlacement, out: &mut Vec<f64>) {
        out.extend(
            placement
                .positions(self.path_length)
                .map(|d| self.evaluate(d.value()).value()),
        );
    }

    /// [`SurfaceProfile::sample_into`] writing into an exact-length slice
    /// instead of appending — the chunk-safe form a parallel trace solver
    /// uses to fill disjoint strided ranges of one preallocated buffer.
    /// Performs exactly the same evaluations in the same order as
    /// [`SurfaceProfile::sample_into`], so the written values are
    /// bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != placement.module_count()`.
    pub fn sample_into_slice(&self, placement: &SShapedPlacement, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            placement.module_count(),
            "slice length must equal the placement's module count"
        );
        for (slot, d) in out.iter_mut().zip(placement.positions(self.path_length)) {
            *slot = self.evaluate(d.value()).value();
        }
    }

    /// The `KernelMode::Fast` lane of [`SurfaceProfile::sample_into`].
    ///
    /// The placement's module positions are evenly spaced, so the sampled
    /// exponentials form a geometric progression:
    /// `exp(−k·d_{i+1}) = exp(−k·d_i) · r` with constant ratio
    /// `r = exp(−k·L/n)`.  Two `exp` calls (the first sample and the ratio)
    /// replace `n` of them; the running product accumulates a relative error
    /// of order `n` ulps, far inside the documented `1e-9` tolerance bound
    /// the equivalence suite enforces against [`SurfaceProfile::sample_into`].
    pub fn sample_into_fast(&self, placement: &SShapedPlacement, out: &mut Vec<f64>) {
        let n = placement.module_count();
        let cold = self.cold_mean.value();
        let excess = self.hot_inlet.value() - cold;
        let spacing = self.path_length.value() / n as f64;
        let ratio = (-self.decay_per_meter * spacing).exp();
        let mut factor = (-self.decay_per_meter * (0.5 * spacing)).exp();
        out.reserve(n);
        for _ in 0..n {
            out.push(cold + excess * factor);
            factor *= ratio;
        }
    }

    /// [`SurfaceProfile::sample_into_fast`] writing into an exact-length
    /// slice instead of appending — the chunk-safe sibling of
    /// [`SurfaceProfile::sample_into_slice`] for the fast kernel lane, with
    /// the identical geometric recurrence (and therefore identical values).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != placement.module_count()`.
    pub fn sample_into_fast_slice(&self, placement: &SShapedPlacement, out: &mut [f64]) {
        let n = placement.module_count();
        assert_eq!(
            out.len(),
            n,
            "slice length must equal the placement's module count"
        );
        let cold = self.cold_mean.value();
        let excess = self.hot_inlet.value() - cold;
        let spacing = self.path_length.value() / n as f64;
        let ratio = (-self.decay_per_meter * spacing).exp();
        let mut factor = (-self.decay_per_meter * (0.5 * spacing)).exp();
        for slot in out.iter_mut() {
            *slot = cold + excess * factor;
            factor *= ratio;
        }
    }

    /// Samples the profile at every module position and subtracts the
    /// heatsink/ambient temperature, returning each module's ΔT clamped at
    /// zero.
    ///
    /// The paper assumes the heatsink sits at the ambient temperature, so this
    /// is the ΔT that drives the electrical model (Eq. 2).
    #[must_use]
    pub fn sample_deltas(
        &self,
        placement: &SShapedPlacement,
        heatsink: Celsius,
    ) -> Vec<TemperatureDelta> {
        self.sample(placement)
            .into_iter()
            .map(|t| (t - heatsink).clamp_non_negative())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> SurfaceProfile {
        SurfaceProfile::new(
            Celsius::new(95.0),
            Celsius::new(30.0),
            0.4,
            Meters::new(3.2),
        )
        .unwrap()
    }

    #[test]
    fn entrance_matches_inlet_temperature() {
        let p = profile();
        assert!((p.at_distance(Meters::ZERO).unwrap().value() - 95.0).abs() < 1e-12);
        assert!((p.at_fraction(0.0).unwrap().value() - 95.0).abs() < 1e-12);
    }

    #[test]
    fn profile_is_monotonically_decreasing() {
        let p = profile();
        let mut last = f64::INFINITY;
        for i in 0..=32 {
            let frac = f64::from(i) / 32.0;
            let t = p.at_fraction(frac).unwrap().value();
            assert!(t < last, "profile must strictly decrease");
            assert!(
                t > p.cold_mean().value(),
                "profile stays above the air mean"
            );
            last = t;
        }
    }

    #[test]
    fn closed_form_matches_equation_one() {
        let p = profile();
        for d in [0.0_f64, 0.5, 1.0, 2.0, 3.2] {
            let expected = 30.0 + (95.0 - 30.0) * (-0.4 * d).exp();
            let got = p.at_distance(Meters::new(d)).unwrap().value();
            assert!((got - expected).abs() < 1e-12, "d={d}");
        }
    }

    #[test]
    fn out_of_range_positions_are_rejected() {
        let p = profile();
        assert!(p.at_distance(Meters::new(-0.1)).is_err());
        assert!(p.at_distance(Meters::new(3.3)).is_err());
        assert!(p.at_fraction(-0.01).is_err());
        assert!(p.at_fraction(1.01).is_err());
    }

    #[test]
    fn invalid_construction_is_rejected() {
        assert!(SurfaceProfile::new(
            Celsius::new(20.0),
            Celsius::new(30.0),
            0.4,
            Meters::new(3.2)
        )
        .is_err());
        assert!(SurfaceProfile::new(
            Celsius::new(95.0),
            Celsius::new(30.0),
            -0.4,
            Meters::new(3.2)
        )
        .is_err());
        assert!(SurfaceProfile::new(
            Celsius::new(95.0),
            Celsius::new(30.0),
            0.4,
            Meters::new(0.0)
        )
        .is_err());
        assert!(SurfaceProfile::new(
            Celsius::new(f64::NAN),
            Celsius::new(30.0),
            0.4,
            Meters::new(3.2)
        )
        .is_err());
    }

    #[test]
    fn sampling_returns_one_temperature_per_module() {
        let p = profile();
        let placement = SShapedPlacement::new(100).unwrap();
        let temps = p.sample(&placement);
        assert_eq!(temps.len(), 100);
        // Entrance-side modules are hotter than exit-side ones.
        assert!(temps[0] > temps[99]);
        // All samples lie inside the profile's bounds.
        for t in &temps {
            assert!(t.value() <= 95.0 && t.value() >= 30.0);
        }
    }

    #[test]
    fn sample_into_is_bit_identical_to_sample() {
        let p = profile();
        let placement = SShapedPlacement::new(33).unwrap();
        let allocated = p.sample(&placement);
        let mut appended = vec![-1.0_f64]; // existing content must survive
        p.sample_into(&placement, &mut appended);
        assert_eq!(appended.len(), 34);
        assert_eq!(appended[0], -1.0);
        for (a, b) in allocated.iter().zip(&appended[1..]) {
            assert_eq!(a.value().to_bits(), b.to_bits());
        }
    }

    #[test]
    fn fast_sampling_matches_the_reference_within_tolerance() {
        for (inlet, decay) in [(95.0, 0.4), (60.0, 0.05), (110.0, 1.7), (40.0, 0.0)] {
            let p = SurfaceProfile::new(
                Celsius::new(inlet),
                Celsius::new(30.0),
                decay,
                Meters::new(3.2),
            )
            .unwrap();
            for n in [1usize, 5, 40, 200] {
                let placement = SShapedPlacement::new(n).unwrap();
                let (mut exact, mut fast) = (Vec::new(), Vec::new());
                p.sample_into(&placement, &mut exact);
                p.sample_into_fast(&placement, &mut fast);
                assert_eq!(fast.len(), n);
                for (a, b) in exact.iter().zip(&fast) {
                    assert!(
                        teg_units::approx_eq(*a, *b, 1e-12),
                        "inlet={inlet} decay={decay} n={n}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn sample_deltas_clamps_below_heatsink() {
        let p = profile();
        let placement = SShapedPlacement::new(10).unwrap();
        // Heatsink hotter than the coldest part of the profile: clamp to zero
        // rather than producing negative ΔT.
        let deltas = p.sample_deltas(&placement, Celsius::new(94.0));
        assert!(deltas.iter().all(|d| d.kelvin() >= 0.0));
        // A realistic heatsink at ambient gives strictly positive ΔT.
        let deltas = p.sample_deltas(&placement, Celsius::new(25.0));
        assert!(deltas.iter().all(|d| d.kelvin() > 0.0));
        // Ordered the same way as the temperatures.
        assert!(deltas[0] > deltas[9]);
    }

    #[test]
    fn zero_decay_gives_flat_profile() {
        let p = SurfaceProfile::new(
            Celsius::new(90.0),
            Celsius::new(30.0),
            0.0,
            Meters::new(3.0),
        )
        .unwrap();
        let a = p.at_fraction(0.0).unwrap();
        let b = p.at_fraction(1.0).unwrap();
        assert!((a.value() - b.value()).abs() < 1e-12);
    }
}
