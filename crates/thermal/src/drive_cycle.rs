//! Synthetic drive-cycle generator.
//!
//! The paper measured the coolant inlet temperature and flow rate of a
//! Hyundai Porter II during an 800-second drive.  That trace is not publicly
//! available, so this module synthesises an equivalent one: a seeded,
//! deterministic sequence of drive phases (idle, acceleration, cruise,
//! deceleration) driving a first-order engine-coolant thermal model with a
//! thermostat, plus measurement noise.  The output is the same signal pair the
//! paper's system samples once per second: coolant inlet temperature and
//! coolant mass-flow rate, together with the ambient state.
//!
//! See `DESIGN.md` for the substitution argument: the reconfiguration
//! algorithms only consume the derived per-module temperature series, and the
//! synthetic cycle exercises the same qualitative regimes (warm-up, load
//! steps, fast transients) that make reconfiguration worthwhile.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use teg_units::{Celsius, Seconds};

use crate::error::ThermalError;
use crate::fluid::{AmbientState, CoolantState};
use crate::trace::TimeSeries;

/// High-level driving phase used by the synthetic cycle.
///
/// # Examples
///
/// ```
/// use teg_thermal::DrivePhase;
///
/// assert!(DrivePhase::Acceleration.engine_load() > DrivePhase::Idle.engine_load());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DrivePhase {
    /// Engine idling (stopped at a light, parked with engine on).
    Idle,
    /// Hard acceleration or hill climb: maximum heat generation.
    Acceleration,
    /// Steady cruise at moderate load.
    Cruise,
    /// Deceleration / engine braking: minimal heat generation, high ram air.
    Deceleration,
}

impl DrivePhase {
    /// Normalised engine load in `[0, 1]` associated with the phase.
    #[must_use]
    pub fn engine_load(self) -> f64 {
        match self {
            Self::Idle => 0.12,
            Self::Acceleration => 0.95,
            Self::Cruise => 0.55,
            Self::Deceleration => 0.05,
        }
    }

    /// Typical coolant-pump mass flow for the phase, in kg/s (the pump is
    /// belt-driven, so flow follows engine speed).
    #[must_use]
    pub fn coolant_flow(self) -> f64 {
        match self {
            Self::Idle => 0.35,
            Self::Acceleration => 1.25,
            Self::Cruise => 0.85,
            Self::Deceleration => 0.55,
        }
    }

    /// Typical air mass flow across the radiator (ram air + fan), in kg/s.
    #[must_use]
    pub fn air_flow(self) -> f64 {
        match self {
            Self::Idle => 0.55,
            Self::Acceleration => 1.35,
            Self::Cruise => 1.6,
            Self::Deceleration => 1.7,
        }
    }
}

/// One 1 Hz sample of the synthetic drive: the phase, the coolant inlet
/// state and the ambient state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriveSample {
    time: Seconds,
    phase: DrivePhase,
    coolant: CoolantState,
    ambient: AmbientState,
}

impl DriveSample {
    /// Timestamp of the sample.
    #[must_use]
    pub const fn time(&self) -> Seconds {
        self.time
    }

    /// Driving phase active at this instant.
    #[must_use]
    pub const fn phase(&self) -> DrivePhase {
        self.phase
    }

    /// Coolant inlet state (temperature + mass flow).
    #[must_use]
    pub const fn coolant(&self) -> CoolantState {
        self.coolant
    }

    /// Ambient air state (temperature + mass flow across the core).
    #[must_use]
    pub const fn ambient(&self) -> AmbientState {
        self.ambient
    }
}

/// A complete synthetic drive cycle sampled at 1 Hz.
///
/// # Examples
///
/// ```
/// use teg_thermal::DriveCycle;
///
/// # fn main() -> Result<(), teg_thermal::ThermalError> {
/// let cycle = DriveCycle::porter_ii_800s(42)?;
/// assert_eq!(cycle.len(), 800);
/// let temps = cycle.coolant_temperature_series();
/// assert!(temps.max().unwrap() <= 113.0);
/// assert!(temps.min().unwrap() >= 55.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DriveCycle {
    samples: Vec<DriveSample>,
    step: Seconds,
}

impl DriveCycle {
    /// Builds the 800-second cycle used throughout the paper's evaluation,
    /// matching the measured Hyundai Porter II drive in duration and regime
    /// mix.  The `seed` makes the cycle reproducible.
    ///
    /// # Errors
    ///
    /// Propagates [`ThermalError::InvalidDriveCycle`] from the builder (never
    /// expected for this preset).
    pub fn porter_ii_800s(seed: u64) -> Result<Self, ThermalError> {
        DriveCycleBuilder::new()
            .duration(Seconds::new(800.0))
            .seed(seed)
            .build()
    }

    /// Number of 1 Hz samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when the cycle has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sampling step (always one second for the presets).
    #[must_use]
    pub const fn step(&self) -> Seconds {
        self.step
    }

    /// Returns the sample at `index`, if present.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&DriveSample> {
        self.samples.get(index)
    }

    /// Iterator over the samples in time order.
    pub fn iter(&self) -> impl Iterator<Item = &DriveSample> {
        self.samples.iter()
    }

    /// All samples as a slice.
    #[must_use]
    pub fn samples(&self) -> &[DriveSample] {
        &self.samples
    }

    /// Coolant inlet temperature as a scalar time series (°C).
    #[must_use]
    pub fn coolant_temperature_series(&self) -> TimeSeries {
        TimeSeries::from_values(
            self.step,
            self.samples
                .iter()
                .map(|s| s.coolant.inlet_temperature().value())
                .collect(),
        )
    }

    /// Coolant mass-flow rate as a scalar time series (kg/s).
    #[must_use]
    pub fn coolant_flow_series(&self) -> TimeSeries {
        TimeSeries::from_values(
            self.step,
            self.samples.iter().map(|s| s.coolant.mass_flow()).collect(),
        )
    }

    /// Restricts the cycle to the half-open sample range `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidDriveCycle`] if the range is empty or
    /// out of bounds.
    pub fn window(&self, start: usize, end: usize) -> Result<Self, ThermalError> {
        if start >= end || end > self.samples.len() {
            return Err(ThermalError::InvalidDriveCycle {
                reason: format!(
                    "invalid window {start}..{end} for {} samples",
                    self.samples.len()
                ),
            });
        }
        Ok(Self {
            samples: self.samples[start..end].to_vec(),
            step: self.step,
        })
    }
}

/// Builder for synthetic [`DriveCycle`]s.
///
/// # Examples
///
/// ```
/// use teg_thermal::DriveCycleBuilder;
/// use teg_units::{Celsius, Seconds};
///
/// # fn main() -> Result<(), teg_thermal::ThermalError> {
/// let cycle = DriveCycleBuilder::new()
///     .duration(Seconds::new(120.0))
///     .ambient_temperature(Celsius::new(30.0))
///     .seed(7)
///     .build()?;
/// assert_eq!(cycle.len(), 120);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DriveCycleBuilder {
    duration: Seconds,
    step: Seconds,
    ambient_temperature: Celsius,
    initial_coolant_temperature: Celsius,
    thermostat_setpoint: Celsius,
    temperature_noise: f64,
    flow_noise: f64,
    seed: u64,
}

impl DriveCycleBuilder {
    /// Creates a builder with the defaults used by the 800 s preset: a warm
    /// engine (85 °C), 25 °C ambient, 97 °C thermostat setpoint and mild
    /// measurement noise.
    #[must_use]
    pub fn new() -> Self {
        Self {
            duration: Seconds::new(800.0),
            step: Seconds::new(1.0),
            ambient_temperature: Celsius::new(25.0),
            initial_coolant_temperature: Celsius::new(85.0),
            thermostat_setpoint: Celsius::new(97.0),
            temperature_noise: 0.15,
            flow_noise: 0.02,
            seed: 0,
        }
    }

    /// Sets the total duration (rounded down to whole steps).
    #[must_use]
    pub fn duration(mut self, duration: Seconds) -> Self {
        self.duration = duration;
        self
    }

    /// Sets the sampling step (default 1 s).
    #[must_use]
    pub fn step(mut self, step: Seconds) -> Self {
        self.step = step;
        self
    }

    /// Sets the ambient air temperature.
    #[must_use]
    pub fn ambient_temperature(mut self, t: Celsius) -> Self {
        self.ambient_temperature = t;
        self
    }

    /// Sets the coolant temperature at the start of the drive.
    #[must_use]
    pub fn initial_coolant_temperature(mut self, t: Celsius) -> Self {
        self.initial_coolant_temperature = t;
        self
    }

    /// Sets the thermostat setpoint the engine regulates towards.
    #[must_use]
    pub fn thermostat_setpoint(mut self, t: Celsius) -> Self {
        self.thermostat_setpoint = t;
        self
    }

    /// Sets the standard deviation of the temperature measurement noise (°C).
    #[must_use]
    pub fn temperature_noise(mut self, sigma: f64) -> Self {
        self.temperature_noise = sigma;
        self
    }

    /// Sets the relative standard deviation of the flow measurement noise.
    #[must_use]
    pub fn flow_noise(mut self, sigma: f64) -> Self {
        self.flow_noise = sigma;
        self
    }

    /// Sets the RNG seed; equal seeds give identical cycles.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the cycle.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidDriveCycle`] if the duration is shorter
    /// than one step, the step is not positive, the noise parameters are
    /// negative, or the ambient is not colder than the thermostat setpoint.
    pub fn build(self) -> Result<DriveCycle, ThermalError> {
        let invalid = |reason: String| ThermalError::InvalidDriveCycle { reason };
        if self.step.value() <= 0.0 {
            return Err(invalid("step must be positive".to_owned()));
        }
        let steps = (self.duration.value() / self.step.value()).floor() as usize;
        if steps == 0 {
            return Err(invalid("duration must cover at least one step".to_owned()));
        }
        if self.temperature_noise < 0.0 || self.flow_noise < 0.0 {
            return Err(invalid("noise levels must be non-negative".to_owned()));
        }
        if self.ambient_temperature.value() >= self.thermostat_setpoint.value() {
            return Err(invalid(
                "ambient temperature must be below the thermostat setpoint".to_owned(),
            ));
        }

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut samples = Vec::with_capacity(steps);
        let mut coolant_temp = self.initial_coolant_temperature.value();
        let mut phase = DrivePhase::Idle;
        let mut phase_remaining = 0usize;

        // Effective thermal mass of the coolant loop (kg·J/(kg·K) lumped):
        // ~8 kg of coolant plus wetted metal at cp ≈ 3600 gives ~46 kJ/K; the
        // value sets how fast the inlet temperature can move (a few tenths of
        // a degree per second), matching the paper's description of a
        // "radical" but sub-degree-per-second fluctuation.
        let thermal_mass = 46_000.0;
        let dt = self.step.value();

        for i in 0..steps {
            if phase_remaining == 0 {
                let (next, duration_range) = next_phase(phase, &mut rng);
                phase = next;
                phase_remaining = rng.gen_range(duration_range);
            }
            phase_remaining -= 1;

            // Engine heat pushed into the coolant: a 3.0 L diesel rejects
            // roughly 10-45 kW to coolant across the load range.
            let engine_heat = 9_000.0 + 38_000.0 * phase.engine_load();

            // Radiator rejection grows with the coolant-ambient difference and
            // with air flow; the thermostat throttles flow through the
            // radiator below the setpoint.
            let overcool = coolant_temp - self.ambient_temperature.value();
            let thermostat_open =
                logistic(coolant_temp - (self.thermostat_setpoint.value() - 6.0), 1.5);
            let rejection = 620.0 * phase.air_flow() * thermostat_open * (overcool / 70.0).max(0.0);

            coolant_temp += dt * (engine_heat - rejection) / thermal_mass;
            // Safety clip: a real cooling system never leaves this band.
            coolant_temp = coolant_temp.clamp(self.ambient_temperature.value() + 5.0, 112.0);

            let measured_temp = coolant_temp + gaussian(&mut rng) * self.temperature_noise;
            let flow = phase.coolant_flow() * (1.0 + gaussian(&mut rng) * self.flow_noise);
            let air_flow = phase.air_flow() * (1.0 + gaussian(&mut rng) * self.flow_noise);

            samples.push(DriveSample {
                time: self.step * i as f64,
                phase,
                coolant: CoolantState::new(Celsius::new(measured_temp), flow.max(0.05)),
                ambient: AmbientState::new(self.ambient_temperature, air_flow.max(0.05)),
            });
        }

        Ok(DriveCycle {
            samples,
            step: self.step,
        })
    }
}

impl Default for DriveCycleBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Markov-style phase transition table: returns the next phase and the range
/// of step counts it lasts.
fn next_phase<R: Rng>(current: DrivePhase, rng: &mut R) -> (DrivePhase, std::ops::Range<usize>) {
    let roll: f64 = rng.gen();
    match current {
        DrivePhase::Idle => {
            if roll < 0.7 {
                (DrivePhase::Acceleration, 8..25)
            } else {
                (DrivePhase::Idle, 5..20)
            }
        }
        DrivePhase::Acceleration => {
            if roll < 0.75 {
                (DrivePhase::Cruise, 20..90)
            } else {
                (DrivePhase::Deceleration, 5..15)
            }
        }
        DrivePhase::Cruise => {
            if roll < 0.45 {
                (DrivePhase::Acceleration, 6..20)
            } else if roll < 0.8 {
                (DrivePhase::Deceleration, 5..18)
            } else {
                (DrivePhase::Cruise, 15..60)
            }
        }
        DrivePhase::Deceleration => {
            if roll < 0.5 {
                (DrivePhase::Idle, 5..30)
            } else {
                (DrivePhase::Cruise, 15..60)
            }
        }
    }
}

/// Standard logistic function with slope `k`, used for the thermostat opening.
fn logistic(x: f64, k: f64) -> f64 {
    1.0 / (1.0 + (-k * x).exp())
}

/// Approximate standard normal sample via the sum of uniforms (Irwin–Hall
/// with 12 terms), sufficient for measurement noise.
fn gaussian<R: Rng>(rng: &mut R) -> f64 {
    let sum: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
    sum - 6.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_cycle_has_expected_length_and_bounds() {
        let cycle = DriveCycle::porter_ii_800s(1).unwrap();
        assert_eq!(cycle.len(), 800);
        assert!(!cycle.is_empty());
        let temps = cycle.coolant_temperature_series();
        assert!(temps.min().unwrap() > 55.0, "coolant should stay warm");
        assert!(
            temps.max().unwrap() < 113.0,
            "coolant should never boil over"
        );
        let flows = cycle.coolant_flow_series();
        assert!(flows.min().unwrap() > 0.0);
        assert!(flows.max().unwrap() < 2.0);
    }

    #[test]
    fn cycles_are_deterministic_per_seed() {
        let a = DriveCycle::porter_ii_800s(99).unwrap();
        let b = DriveCycle::porter_ii_800s(99).unwrap();
        assert_eq!(a, b);
        let c = DriveCycle::porter_ii_800s(100).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn temperature_moves_slowly_between_samples() {
        // The coolant loop has a large thermal mass: consecutive 1 Hz samples
        // should differ by well under a degree apart from measurement noise.
        let cycle = DriveCycle::porter_ii_800s(3).unwrap();
        let temps = cycle.coolant_temperature_series();
        let values = temps.values();
        for pair in values.windows(2) {
            assert!(
                (pair[1] - pair[0]).abs() < 1.5,
                "jump {} -> {}",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn cycle_visits_multiple_phases() {
        let cycle = DriveCycle::porter_ii_800s(5).unwrap();
        let mut seen = std::collections::HashSet::new();
        for s in cycle.iter() {
            seen.insert(format!("{:?}", s.phase()));
        }
        assert!(
            seen.len() >= 3,
            "an 800 s drive should exercise several phases, saw {seen:?}"
        );
    }

    #[test]
    fn window_extracts_subrange() {
        let cycle = DriveCycle::porter_ii_800s(7).unwrap();
        let win = cycle.window(100, 220).unwrap();
        assert_eq!(win.len(), 120);
        assert_eq!(
            win.get(0).unwrap().coolant().inlet_temperature(),
            cycle.get(100).unwrap().coolant().inlet_temperature()
        );
        assert!(cycle.window(10, 10).is_err());
        assert!(cycle.window(790, 900).is_err());
    }

    #[test]
    fn builder_rejects_bad_parameters() {
        assert!(DriveCycleBuilder::new()
            .duration(Seconds::new(0.0))
            .build()
            .is_err());
        assert!(DriveCycleBuilder::new()
            .step(Seconds::new(0.0))
            .build()
            .is_err());
        assert!(DriveCycleBuilder::new()
            .temperature_noise(-1.0)
            .build()
            .is_err());
        assert!(DriveCycleBuilder::new().flow_noise(-0.1).build().is_err());
        assert!(DriveCycleBuilder::new()
            .ambient_temperature(Celsius::new(99.0))
            .thermostat_setpoint(Celsius::new(97.0))
            .build()
            .is_err());
    }

    #[test]
    fn custom_ambient_is_propagated() {
        let cycle = DriveCycleBuilder::new()
            .duration(Seconds::new(60.0))
            .ambient_temperature(Celsius::new(35.0))
            .seed(11)
            .build()
            .unwrap();
        for s in cycle.iter() {
            assert_eq!(s.ambient().temperature().value(), 35.0);
        }
    }

    #[test]
    fn cold_start_warms_up_towards_setpoint() {
        let cycle = DriveCycleBuilder::new()
            .duration(Seconds::new(600.0))
            .initial_coolant_temperature(Celsius::new(40.0))
            .seed(2)
            .build()
            .unwrap();
        let temps = cycle.coolant_temperature_series();
        let early = temps.values()[..60].iter().sum::<f64>() / 60.0;
        let late = temps.values()[540..].iter().sum::<f64>() / 60.0;
        assert!(
            late > early + 10.0,
            "engine should warm up: early {early:.1}, late {late:.1}"
        );
    }

    #[test]
    fn phase_parameters_are_ordered_sensibly() {
        assert!(DrivePhase::Acceleration.coolant_flow() > DrivePhase::Idle.coolant_flow());
        assert!(DrivePhase::Cruise.air_flow() > DrivePhase::Idle.air_flow());
        assert!(DrivePhase::Deceleration.engine_load() < DrivePhase::Cruise.engine_load());
    }
}
