//! Error type for the thermal substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by the radiator and drive-cycle models.
///
/// # Examples
///
/// ```
/// use teg_thermal::ThermalError;
///
/// let err = ThermalError::NonPositiveFlowRate { kg_per_s: -0.5 };
/// assert!(err.to_string().contains("flow rate"));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ThermalError {
    /// A mass-flow rate was zero or negative where a positive value is
    /// required (the ε-NTU method divides by capacity rates).
    NonPositiveFlowRate {
        /// The offending mass flow rate in kg/s.
        kg_per_s: f64,
    },
    /// The coolant inlet temperature was not strictly hotter than the ambient
    /// air; the harvesting model has no meaning in that regime.
    InvertedTemperatures {
        /// Coolant inlet temperature in °C.
        coolant_c: f64,
        /// Ambient temperature in °C.
        ambient_c: f64,
    },
    /// A geometry parameter was invalid (zero or negative dimension, zero
    /// tubes, …).
    InvalidGeometry {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
    /// A requested position lies outside the radiator fin path.
    PositionOutOfRange {
        /// The requested fractional position (0.0..=1.0 expected).
        fraction: f64,
    },
    /// A drive-cycle configuration parameter was invalid.
    InvalidDriveCycle {
        /// Human-readable description of the offending parameter.
        reason: String,
    },
    /// A non-finite value (NaN or infinity) was encountered in an input.
    NonFiniteInput {
        /// Which quantity was non-finite.
        what: &'static str,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonPositiveFlowRate { kg_per_s } => {
                write!(f, "mass flow rate must be positive, got {kg_per_s} kg/s")
            }
            Self::InvertedTemperatures {
                coolant_c,
                ambient_c,
            } => write!(
                f,
                "coolant inlet ({coolant_c} °C) must be hotter than ambient air ({ambient_c} °C)"
            ),
            Self::InvalidGeometry { reason } => write!(f, "invalid radiator geometry: {reason}"),
            Self::PositionOutOfRange { fraction } => {
                write!(
                    f,
                    "position fraction {fraction} outside the radiator (expected 0..=1)"
                )
            }
            Self::InvalidDriveCycle { reason } => write!(f, "invalid drive cycle: {reason}"),
            Self::NonFiniteInput { what } => write!(f, "non-finite value supplied for {what}"),
        }
    }
}

impl Error for ThermalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        let cases: Vec<(ThermalError, &str)> = vec![
            (
                ThermalError::NonPositiveFlowRate { kg_per_s: 0.0 },
                "flow rate",
            ),
            (
                ThermalError::InvertedTemperatures {
                    coolant_c: 20.0,
                    ambient_c: 30.0,
                },
                "hotter than ambient",
            ),
            (
                ThermalError::InvalidGeometry {
                    reason: "zero tubes".into(),
                },
                "zero tubes",
            ),
            (
                ThermalError::PositionOutOfRange { fraction: 1.5 },
                "outside the radiator",
            ),
            (
                ThermalError::InvalidDriveCycle {
                    reason: "empty".into(),
                },
                "drive cycle",
            ),
            (
                ThermalError::NonFiniteInput {
                    what: "coolant temperature",
                },
                "non-finite",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }

    #[test]
    fn error_is_send_sync_and_std_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<ThermalError>();
    }
}
