//! Fluid property models for the engine coolant and the ambient air stream,
//! plus the instantaneous inlet states the radiator model consumes.

use teg_units::Celsius;

use crate::error::ThermalError;

/// Properties of the hot fluid: a 50/50 water–ethylene-glycol engine coolant.
///
/// Only the specific heat matters for the ε-NTU energy balance; it is modelled
/// with a mild linear temperature dependence fitted to tabulated data for
/// 50/50 glycol between 20 °C and 110 °C.
///
/// # Examples
///
/// ```
/// use teg_thermal::CoolantProperties;
/// use teg_units::Celsius;
///
/// let props = CoolantProperties::ethylene_glycol_50();
/// let cp = props.specific_heat(Celsius::new(90.0));
/// assert!(cp > 3300.0 && cp < 3900.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoolantProperties {
    /// Specific heat at 0 °C in J/(kg·K).
    cp_at_zero: f64,
    /// Linear temperature coefficient of the specific heat in J/(kg·K²).
    cp_slope: f64,
    /// Density at reference conditions in kg/m³ (used when flow is given as a
    /// volumetric rate).
    density: f64,
}

impl CoolantProperties {
    /// Properties of a 50/50 water–ethylene-glycol mixture, the typical
    /// vehicle coolant assumed by the paper's radiator model.
    #[must_use]
    pub fn ethylene_glycol_50() -> Self {
        Self {
            cp_at_zero: 3300.0,
            cp_slope: 3.5,
            density: 1060.0,
        }
    }

    /// Properties of pure water, useful for sensitivity studies.
    #[must_use]
    pub fn water() -> Self {
        Self {
            cp_at_zero: 4205.0,
            cp_slope: -0.3,
            density: 998.0,
        }
    }

    /// Specific heat in J/(kg·K) at the given temperature.
    #[must_use]
    pub fn specific_heat(&self, temperature: Celsius) -> f64 {
        self.cp_at_zero + self.cp_slope * temperature.value()
    }

    /// Density in kg/m³.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.density
    }
}

impl Default for CoolantProperties {
    fn default() -> Self {
        Self::ethylene_glycol_50()
    }
}

/// Properties of the cold fluid: ambient air drawn across the radiator fins.
///
/// # Examples
///
/// ```
/// use teg_thermal::AirProperties;
/// use teg_units::Celsius;
///
/// let air = AirProperties::standard();
/// assert!((air.specific_heat(Celsius::new(25.0)) - 1006.0).abs() < 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AirProperties {
    cp_at_zero: f64,
    cp_slope: f64,
    density: f64,
}

impl AirProperties {
    /// Dry air at roughly sea-level pressure.
    #[must_use]
    pub fn standard() -> Self {
        Self {
            cp_at_zero: 1005.5,
            cp_slope: 0.02,
            density: 1.184,
        }
    }

    /// Specific heat in J/(kg·K) at the given temperature.
    #[must_use]
    pub fn specific_heat(&self, temperature: Celsius) -> f64 {
        self.cp_at_zero + self.cp_slope * temperature.value()
    }

    /// Density in kg/m³.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.density
    }
}

impl Default for AirProperties {
    fn default() -> Self {
        Self::standard()
    }
}

/// The instantaneous state of the coolant at the radiator inlet: temperature
/// and mass-flow rate.
///
/// This is the pair the paper measured on the Hyundai Porter II (thermocouple
/// + industrial flow meter) and the pair the synthetic drive cycle generates.
///
/// # Examples
///
/// ```
/// use teg_thermal::CoolantState;
/// use teg_units::Celsius;
///
/// let state = CoolantState::new(Celsius::new(92.0), 0.75);
/// assert_eq!(state.mass_flow(), 0.75);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoolantState {
    inlet_temperature: Celsius,
    mass_flow_kg_per_s: f64,
}

impl CoolantState {
    /// Creates a coolant inlet state from the inlet temperature and the
    /// mass-flow rate in kg/s.
    #[must_use]
    pub const fn new(inlet_temperature: Celsius, mass_flow_kg_per_s: f64) -> Self {
        Self {
            inlet_temperature,
            mass_flow_kg_per_s,
        }
    }

    /// Coolant temperature at the radiator entrance (`T_h,i` in Eq. 1).
    #[must_use]
    pub const fn inlet_temperature(&self) -> Celsius {
        self.inlet_temperature
    }

    /// Coolant mass-flow rate in kg/s.
    #[must_use]
    pub const fn mass_flow(&self) -> f64 {
        self.mass_flow_kg_per_s
    }

    /// Hot-fluid capacity rate `C_h = ṁ·c_p` in W/K.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NonPositiveFlowRate`] if the flow rate is not
    /// positive and [`ThermalError::NonFiniteInput`] if either input is NaN
    /// or infinite.
    pub fn capacity_rate(&self, props: &CoolantProperties) -> Result<f64, ThermalError> {
        if !self.mass_flow_kg_per_s.is_finite() || !self.inlet_temperature.is_finite() {
            return Err(ThermalError::NonFiniteInput {
                what: "coolant state",
            });
        }
        if self.mass_flow_kg_per_s <= 0.0 {
            return Err(ThermalError::NonPositiveFlowRate {
                kg_per_s: self.mass_flow_kg_per_s,
            });
        }
        Ok(self.mass_flow_kg_per_s * props.specific_heat(self.inlet_temperature))
    }
}

/// The instantaneous state of the ambient air stream: temperature and
/// mass-flow rate across the radiator core (ram air plus fan).
///
/// # Examples
///
/// ```
/// use teg_thermal::AmbientState;
/// use teg_units::Celsius;
///
/// let ambient = AmbientState::new(Celsius::new(27.0), 1.4);
/// assert_eq!(ambient.temperature().value(), 27.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmbientState {
    temperature: Celsius,
    mass_flow_kg_per_s: f64,
}

impl AmbientState {
    /// Creates an ambient-air state from the air inlet temperature and the
    /// air mass-flow rate in kg/s.
    #[must_use]
    pub const fn new(temperature: Celsius, mass_flow_kg_per_s: f64) -> Self {
        Self {
            temperature,
            mass_flow_kg_per_s,
        }
    }

    /// Air inlet temperature, which the paper also uses as the heatsink
    /// temperature of every TEG module.
    #[must_use]
    pub const fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Air mass-flow rate in kg/s.
    #[must_use]
    pub const fn mass_flow(&self) -> f64 {
        self.mass_flow_kg_per_s
    }

    /// Cold-fluid capacity rate `C_c = ṁ·c_p` in W/K.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::NonPositiveFlowRate`] if the flow rate is not
    /// positive and [`ThermalError::NonFiniteInput`] if either input is NaN
    /// or infinite.
    pub fn capacity_rate(&self, props: &AirProperties) -> Result<f64, ThermalError> {
        if !self.mass_flow_kg_per_s.is_finite() || !self.temperature.is_finite() {
            return Err(ThermalError::NonFiniteInput {
                what: "ambient state",
            });
        }
        if self.mass_flow_kg_per_s <= 0.0 {
            return Err(ThermalError::NonPositiveFlowRate {
                kg_per_s: self.mass_flow_kg_per_s,
            });
        }
        Ok(self.mass_flow_kg_per_s * props.specific_heat(self.temperature))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glycol_specific_heat_increases_with_temperature() {
        let props = CoolantProperties::ethylene_glycol_50();
        assert!(props.specific_heat(Celsius::new(90.0)) > props.specific_heat(Celsius::new(20.0)));
    }

    #[test]
    fn water_specific_heat_is_near_4200() {
        let props = CoolantProperties::water();
        let cp = props.specific_heat(Celsius::new(60.0));
        assert!(cp > 4100.0 && cp < 4300.0, "got {cp}");
    }

    #[test]
    fn air_specific_heat_is_near_1005() {
        let air = AirProperties::standard();
        let cp = air.specific_heat(Celsius::new(25.0));
        assert!(cp > 1000.0 && cp < 1010.0);
        assert!(air.density() > 1.0 && air.density() < 1.3);
    }

    #[test]
    fn coolant_capacity_rate_scales_with_flow() {
        let props = CoolantProperties::default();
        let low = CoolantState::new(Celsius::new(90.0), 0.4)
            .capacity_rate(&props)
            .unwrap();
        let high = CoolantState::new(Celsius::new(90.0), 0.8)
            .capacity_rate(&props)
            .unwrap();
        assert!((high / low - 2.0).abs() < 1e-12);
    }

    #[test]
    fn non_positive_flow_is_rejected() {
        let props = CoolantProperties::default();
        let err = CoolantState::new(Celsius::new(90.0), 0.0)
            .capacity_rate(&props)
            .unwrap_err();
        assert!(matches!(err, ThermalError::NonPositiveFlowRate { .. }));
        let air = AirProperties::default();
        let err = AmbientState::new(Celsius::new(25.0), -1.0)
            .capacity_rate(&air)
            .unwrap_err();
        assert!(matches!(err, ThermalError::NonPositiveFlowRate { .. }));
    }

    #[test]
    fn non_finite_inputs_are_rejected() {
        let props = CoolantProperties::default();
        let err = CoolantState::new(Celsius::new(f64::NAN), 0.5)
            .capacity_rate(&props)
            .unwrap_err();
        assert!(matches!(err, ThermalError::NonFiniteInput { .. }));
        let air = AirProperties::default();
        let err = AmbientState::new(Celsius::new(25.0), f64::INFINITY)
            .capacity_rate(&air)
            .unwrap_err();
        assert!(matches!(err, ThermalError::NonFiniteInput { .. }));
    }

    #[test]
    fn typical_vehicle_capacity_rates_have_air_as_cmin() {
        // At cruise the coolant loop moves ~0.5-1 kg/s while the air stream is
        // of comparable mass flow but with ~3.5x smaller cp, so the air side is
        // the minimum capacity rate; the paper's Eq. 1 relies on this.
        let coolant = CoolantState::new(Celsius::new(95.0), 0.8)
            .capacity_rate(&CoolantProperties::default())
            .unwrap();
        let air = AmbientState::new(Celsius::new(25.0), 1.2)
            .capacity_rate(&AirProperties::default())
            .unwrap();
        assert!(air < coolant);
    }

    #[test]
    fn default_constructors_match_named_presets() {
        assert_eq!(
            CoolantProperties::default(),
            CoolantProperties::ethylene_glycol_50()
        );
        assert_eq!(AirProperties::default(), AirProperties::standard());
    }
}
