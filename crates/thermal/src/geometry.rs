//! Finned-tube radiator core geometry.
//!
//! The geometry determines the overall heat-transfer coefficient per unit
//! length (`K` in the paper's Eq. 1) and the total fin-path length over which
//! TEG modules are placed.

use teg_units::{Meters, SquareMeters};

use crate::error::ThermalError;

/// Geometry of a finned-tube cross-flow radiator core.
///
/// The radiator is modelled as a single serpentine (S-shaped) flat tube of
/// total length `flow_path_length` carrying coolant, with louvred fins between
/// passes.  The actual 2-D core of a vehicle radiator is a parallel bundle of
/// such serpentines; the paper argues (Section III-A) that modelling one
/// serpentine is sufficient because the full core is simply a parallel
/// connection of 1-D paths.
///
/// # Examples
///
/// ```
/// use teg_thermal::RadiatorGeometry;
///
/// let geometry = RadiatorGeometry::porter_ii();
/// assert!(geometry.flow_path_length().value() > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadiatorGeometry {
    flow_path_length: Meters,
    tube_width: Meters,
    fin_area_per_length: f64,
    tube_side_coefficient: f64,
    air_side_coefficient: f64,
    fin_efficiency: f64,
}

impl RadiatorGeometry {
    /// Geometry representative of the radiator of the two-door 3.0 L diesel
    /// pickup (Hyundai Porter II) used in the paper's measurement campaign.
    ///
    /// The serpentine flow path is about 3.2 m long (eight 0.4 m passes) and
    /// the combined tube+fin heat-transfer surface gives an overall
    /// conductance of roughly 1 kW/K for the whole core, in line with compact
    /// automotive radiators.
    #[must_use]
    pub fn porter_ii() -> Self {
        RadiatorGeometryBuilder::new()
            .flow_path_length(Meters::new(4.8))
            .tube_width(Meters::new(0.05))
            .fin_area_per_length(9.0)
            .tube_side_coefficient(12000.0)
            .air_side_coefficient(100.0)
            .fin_efficiency(0.82)
            .build()
            .expect("preset geometry is valid")
    }

    /// A physically larger core representative of an industrial boiler
    /// economiser / heat-exchanger bank, used by the scalability experiments
    /// (the paper argues the algorithms pay off most on such systems).
    #[must_use]
    pub fn industrial_boiler() -> Self {
        RadiatorGeometryBuilder::new()
            .flow_path_length(Meters::new(24.0))
            .tube_width(Meters::new(0.08))
            .fin_area_per_length(7.5)
            .tube_side_coefficient(9000.0)
            .air_side_coefficient(140.0)
            .fin_efficiency(0.78)
            .build()
            .expect("preset geometry is valid")
    }

    /// Returns a builder for custom geometries.
    #[must_use]
    pub fn builder() -> RadiatorGeometryBuilder {
        RadiatorGeometryBuilder::new()
    }

    /// Total coolant flow-path length of the serpentine in metres.
    #[must_use]
    pub const fn flow_path_length(&self) -> Meters {
        self.flow_path_length
    }

    /// Flat-tube width (the dimension a TEG module sits across) in metres.
    #[must_use]
    pub const fn tube_width(&self) -> Meters {
        self.tube_width
    }

    /// Secondary (fin) surface area per metre of flow path, in m²/m.
    #[must_use]
    pub const fn fin_area_per_length(&self) -> f64 {
        self.fin_area_per_length
    }

    /// Convective coefficient on the coolant side in W/(m²·K).
    #[must_use]
    pub const fn tube_side_coefficient(&self) -> f64 {
        self.tube_side_coefficient
    }

    /// Convective coefficient on the air side in W/(m²·K).
    #[must_use]
    pub const fn air_side_coefficient(&self) -> f64 {
        self.air_side_coefficient
    }

    /// Fin efficiency (0..1] applied to the secondary surface.
    #[must_use]
    pub const fn fin_efficiency(&self) -> f64 {
        self.fin_efficiency
    }

    /// Primary (tube outer) surface area per metre of flow path, in m²/m.
    ///
    /// The flat tube exposes both faces, so the primary area per unit length
    /// is twice the tube width.
    #[must_use]
    pub fn tube_area_per_length(&self) -> f64 {
        2.0 * self.tube_width.value()
    }

    /// Total heat-transfer surface area of the core.
    #[must_use]
    pub fn total_surface_area(&self) -> SquareMeters {
        SquareMeters::new(
            (self.tube_area_per_length() + self.fin_area_per_length)
                * self.flow_path_length.value(),
        )
    }

    /// Overall heat-transfer coefficient per unit flow-path length, `K` in
    /// the paper's Eq. 1, in W/(m·K).
    ///
    /// Series combination of the coolant-side film and the (fin-weighted)
    /// air-side film, both referred to one metre of flow path:
    ///
    /// ```text
    /// 1 / K = 1 / (h_tube · A'_tube)  +  1 / (h_air · (A'_tube + η_fin · A'_fin))
    /// ```
    #[must_use]
    pub fn overall_coefficient_per_length(&self) -> f64 {
        let primary = self.tube_area_per_length();
        let inner = self.tube_side_coefficient * primary;
        let outer =
            self.air_side_coefficient * (primary + self.fin_efficiency * self.fin_area_per_length);
        1.0 / (1.0 / inner + 1.0 / outer)
    }

    /// Overall conductance `U·A` of the whole core, in W/K.
    #[must_use]
    pub fn overall_conductance(&self) -> f64 {
        self.overall_coefficient_per_length() * self.flow_path_length.value()
    }
}

/// Builder for [`RadiatorGeometry`].
///
/// # Examples
///
/// ```
/// use teg_thermal::RadiatorGeometryBuilder;
/// use teg_units::Meters;
///
/// # fn main() -> Result<(), teg_thermal::ThermalError> {
/// let geometry = RadiatorGeometryBuilder::new()
///     .flow_path_length(Meters::new(2.4))
///     .tube_width(Meters::new(0.03))
///     .build()?;
/// assert_eq!(geometry.flow_path_length().value(), 2.4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RadiatorGeometryBuilder {
    flow_path_length: Meters,
    tube_width: Meters,
    fin_area_per_length: f64,
    tube_side_coefficient: f64,
    air_side_coefficient: f64,
    fin_efficiency: f64,
}

impl RadiatorGeometryBuilder {
    /// Creates a builder pre-populated with the Porter II defaults.
    #[must_use]
    pub fn new() -> Self {
        Self {
            flow_path_length: Meters::new(4.8),
            tube_width: Meters::new(0.05),
            fin_area_per_length: 9.0,
            tube_side_coefficient: 12000.0,
            air_side_coefficient: 100.0,
            fin_efficiency: 0.82,
        }
    }

    /// Sets the serpentine flow-path length.
    #[must_use]
    pub fn flow_path_length(mut self, length: Meters) -> Self {
        self.flow_path_length = length;
        self
    }

    /// Sets the flat-tube width.
    #[must_use]
    pub fn tube_width(mut self, width: Meters) -> Self {
        self.tube_width = width;
        self
    }

    /// Sets the fin surface area per metre of flow path (m²/m).
    #[must_use]
    pub fn fin_area_per_length(mut self, area: f64) -> Self {
        self.fin_area_per_length = area;
        self
    }

    /// Sets the coolant-side convective coefficient (W/(m²·K)).
    #[must_use]
    pub fn tube_side_coefficient(mut self, h: f64) -> Self {
        self.tube_side_coefficient = h;
        self
    }

    /// Sets the air-side convective coefficient (W/(m²·K)).
    #[must_use]
    pub fn air_side_coefficient(mut self, h: f64) -> Self {
        self.air_side_coefficient = h;
        self
    }

    /// Sets the fin efficiency (0..1].
    #[must_use]
    pub fn fin_efficiency(mut self, eta: f64) -> Self {
        self.fin_efficiency = eta;
        self
    }

    /// Validates the parameters and builds the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidGeometry`] if any dimension or
    /// coefficient is non-positive, the fin efficiency lies outside `(0, 1]`,
    /// or any parameter is not finite.
    pub fn build(self) -> Result<RadiatorGeometry, ThermalError> {
        let invalid = |reason: &str| ThermalError::InvalidGeometry {
            reason: reason.to_owned(),
        };
        let finite = [
            self.flow_path_length.value(),
            self.tube_width.value(),
            self.fin_area_per_length,
            self.tube_side_coefficient,
            self.air_side_coefficient,
            self.fin_efficiency,
        ];
        if finite.iter().any(|v| !v.is_finite()) {
            return Err(ThermalError::NonFiniteInput {
                what: "radiator geometry",
            });
        }
        if self.flow_path_length.value() <= 0.0 {
            return Err(invalid("flow path length must be positive"));
        }
        if self.tube_width.value() <= 0.0 {
            return Err(invalid("tube width must be positive"));
        }
        if self.fin_area_per_length < 0.0 {
            return Err(invalid("fin area per length must be non-negative"));
        }
        if self.tube_side_coefficient <= 0.0 || self.air_side_coefficient <= 0.0 {
            return Err(invalid("convective coefficients must be positive"));
        }
        if !(self.fin_efficiency > 0.0 && self.fin_efficiency <= 1.0) {
            return Err(invalid("fin efficiency must lie in (0, 1]"));
        }
        Ok(RadiatorGeometry {
            flow_path_length: self.flow_path_length,
            tube_width: self.tube_width,
            fin_area_per_length: self.fin_area_per_length,
            tube_side_coefficient: self.tube_side_coefficient,
            air_side_coefficient: self.air_side_coefficient,
            fin_efficiency: self.fin_efficiency,
        })
    }
}

impl Default for RadiatorGeometryBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn porter_preset_is_sane() {
        let g = RadiatorGeometry::porter_ii();
        assert!(g.flow_path_length().value() > 1.0 && g.flow_path_length().value() < 10.0);
        assert!(g.overall_coefficient_per_length() > 10.0);
        assert!(g.overall_conductance() > 50.0);
        assert!(g.total_surface_area().value() > 1.0);
    }

    #[test]
    fn boiler_preset_is_larger_than_porter() {
        let p = RadiatorGeometry::porter_ii();
        let b = RadiatorGeometry::industrial_boiler();
        assert!(b.flow_path_length() > p.flow_path_length());
        assert!(b.overall_conductance() > p.overall_conductance());
    }

    #[test]
    fn overall_coefficient_dominated_by_air_side() {
        // The air-side film is the limiting resistance on a vehicle radiator;
        // improving the air-side coefficient must pay off more than improving
        // the coolant-side coefficient by the same factor.
        let base = RadiatorGeometry::porter_ii();
        let double_tube = RadiatorGeometry::builder()
            .tube_side_coefficient(2.0 * base.tube_side_coefficient())
            .build()
            .unwrap();
        let double_air = RadiatorGeometry::builder()
            .air_side_coefficient(2.0 * base.air_side_coefficient())
            .build()
            .unwrap();
        let k = base.overall_coefficient_per_length();
        let gain_tube = double_tube.overall_coefficient_per_length() / k;
        let gain_air = double_air.overall_coefficient_per_length() / k;
        assert!(
            gain_air > gain_tube,
            "air gain {gain_air:.3} vs tube gain {gain_tube:.3}"
        );
        assert!(
            gain_air > 1.3,
            "air-side improvement should matter, got {gain_air:.3}"
        );
    }

    #[test]
    fn fin_efficiency_scales_air_side_area() {
        let lossy = RadiatorGeometry::builder()
            .fin_efficiency(0.4)
            .build()
            .unwrap();
        let ideal = RadiatorGeometry::builder()
            .fin_efficiency(1.0)
            .build()
            .unwrap();
        assert!(ideal.overall_coefficient_per_length() > lossy.overall_coefficient_per_length());
    }

    #[test]
    fn builder_rejects_bad_parameters() {
        assert!(RadiatorGeometry::builder()
            .flow_path_length(Meters::new(0.0))
            .build()
            .is_err());
        assert!(RadiatorGeometry::builder()
            .tube_width(Meters::new(-0.1))
            .build()
            .is_err());
        assert!(RadiatorGeometry::builder()
            .fin_area_per_length(-1.0)
            .build()
            .is_err());
        assert!(RadiatorGeometry::builder()
            .tube_side_coefficient(0.0)
            .build()
            .is_err());
        assert!(RadiatorGeometry::builder()
            .air_side_coefficient(-5.0)
            .build()
            .is_err());
        assert!(RadiatorGeometry::builder()
            .fin_efficiency(0.0)
            .build()
            .is_err());
        assert!(RadiatorGeometry::builder()
            .fin_efficiency(1.5)
            .build()
            .is_err());
        assert!(matches!(
            RadiatorGeometry::builder()
                .fin_efficiency(f64::NAN)
                .build()
                .unwrap_err(),
            ThermalError::NonFiniteInput { .. }
        ));
    }

    #[test]
    fn zero_fin_area_is_allowed() {
        // A bare-tube exchanger is valid, just poor.
        let bare = RadiatorGeometry::builder()
            .fin_area_per_length(0.0)
            .build()
            .unwrap();
        assert!(bare.overall_coefficient_per_length() > 0.0);
        assert!(
            bare.overall_coefficient_per_length()
                < RadiatorGeometry::porter_ii().overall_coefficient_per_length()
        );
    }

    #[test]
    fn builder_default_equals_new() {
        let a = RadiatorGeometryBuilder::default().build().unwrap();
        let b = RadiatorGeometryBuilder::new().build().unwrap();
        assert_eq!(a, b);
    }
}
