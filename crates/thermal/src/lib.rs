//! Radiator thermal substrate for the TEG reconfiguration suite.
//!
//! The paper harvests energy from a vehicle radiator: hot engine coolant flows
//! through a finned-tube cross-flow heat exchanger while ambient air is pulled
//! across the fins.  The coolant temperature decays exponentially along the
//! tube (effectiveness-NTU derivation, Eq. 1 of the paper):
//!
//! ```text
//! T(d) = (T_h,i − T_c,a) · exp(−K·d / C_c) + T_c,a
//! ```
//!
//! where `T_h,i` is the coolant inlet temperature, `T_c,a` the arithmetic mean
//! of the air inlet and outlet temperatures, `K` the overall heat-transfer
//! coefficient per unit length, and `C_c` the cold-fluid capacity rate.
//!
//! This crate provides every thermal piece the rest of the suite needs:
//!
//! * [`CoolantProperties`]/[`AirProperties`] — fluid property models and
//!   capacity rates,
//! * [`RadiatorGeometry`] — finned-tube radiator core geometry,
//! * [`effectiveness`] — effectiveness-NTU relations for common exchanger
//!   arrangements,
//! * [`Radiator`] — the assembled radiator model producing decay constants,
//!   outlet temperatures and heat duty,
//! * [`SurfaceProfile`] — the 1-D surface-temperature profile sampled at
//!   module positions,
//! * [`SShapedPlacement`] — S-shaped placement of N TEG modules along the fin
//!   path,
//! * [`TimeSeries`] — generic time-series containers,
//! * [`DriveCycle`] — a synthetic, seeded drive-cycle generator substituting
//!   for the paper's measured 800-second Hyundai Porter II trace.
//!
//! # Examples
//!
//! ```
//! use teg_thermal::{Radiator, RadiatorGeometry, CoolantState, AmbientState};
//! use teg_units::Celsius;
//!
//! # fn main() -> Result<(), teg_thermal::ThermalError> {
//! let radiator = Radiator::new(RadiatorGeometry::porter_ii());
//! let coolant = CoolantState::new(Celsius::new(95.0), 0.8);
//! let ambient = AmbientState::new(Celsius::new(25.0), 1.2);
//! let profile = radiator.surface_profile(&coolant, &ambient)?;
//! // Temperature decays along the radiator.
//! assert!(profile.at_fraction(0.9)? < profile.at_fraction(0.1)?);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distribution;
mod drive_cycle;
mod error;
mod fluid;
mod geometry;
mod ntu;
mod placement;
mod radiator;
mod trace;

pub use distribution::SurfaceProfile;
pub use drive_cycle::{DriveCycle, DriveCycleBuilder, DrivePhase, DriveSample};
pub use error::ThermalError;
pub use fluid::{AirProperties, AmbientState, CoolantProperties, CoolantState};
pub use geometry::{RadiatorGeometry, RadiatorGeometryBuilder};
pub use ntu::{effectiveness, effectiveness_with_mode, ExchangerArrangement};
pub use placement::SShapedPlacement;
pub use radiator::{Radiator, RadiatorOperatingPoint};
pub use trace::{TimeSeries, TracePoint};

#[cfg(test)]
mod thread_safety {
    use super::*;

    /// The parallel scenario sweep in `teg-sim` shares drive cycles,
    /// radiators and placements across worker threads by reference; every
    /// thermal type must therefore be `Send + Sync`.  This is a
    /// compile-time audit: it fails to build if a future change introduces
    /// interior mutability that is not thread-safe.
    #[test]
    fn thermal_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DriveCycle>();
        assert_send_sync::<DriveSample>();
        assert_send_sync::<Radiator>();
        assert_send_sync::<RadiatorGeometry>();
        assert_send_sync::<SShapedPlacement>();
        assert_send_sync::<SurfaceProfile>();
        assert_send_sync::<TimeSeries>();
        assert_send_sync::<CoolantState>();
        assert_send_sync::<AmbientState>();
    }
}
