//! Effectiveness-NTU relations for heat exchangers.
//!
//! The paper derives its 1-D temperature distribution with the
//! effectiveness-NTU (number of transfer units) method from Bergman,
//! *Introduction to Heat Transfer*.  This module provides the standard ε(NTU,
//! C_r) relations for the arrangements relevant to a vehicle radiator so the
//! radiator model can compute outlet temperatures and heat duty, and so tests
//! can cross-check the exponential profile of Eq. 1 against the global energy
//! balance.

use teg_units::KernelMode;

/// Flow arrangement of a two-stream heat exchanger.
///
/// # Examples
///
/// ```
/// use teg_thermal::{effectiveness, ExchangerArrangement};
///
/// let eps = effectiveness(ExchangerArrangement::CrossFlowBothUnmixed, 1.2, 0.4);
/// assert!(eps > 0.0 && eps < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ExchangerArrangement {
    /// Counter-flow exchanger (upper bound on effectiveness).
    CounterFlow,
    /// Parallel-flow exchanger (lower bound on effectiveness).
    ParallelFlow,
    /// Cross-flow with both fluids unmixed — the standard model for a
    /// finned-tube automotive radiator and the one used by the paper.
    CrossFlowBothUnmixed,
    /// Cross-flow with the C_max fluid mixed and the C_min fluid unmixed.
    CrossFlowCmaxMixed,
    /// Any arrangement in the limit where one fluid changes phase or has an
    /// overwhelmingly larger capacity rate (C_r → 0).
    SingleStream,
}

/// Computes the effectiveness ε of a heat exchanger from its number of
/// transfer units `ntu = UA / C_min` and its capacity-rate ratio
/// `c_r = C_min / C_max`.
///
/// The returned value is clamped to `[0, 1]`; for `c_r` outside `[0, 1]` or a
/// negative `ntu` the inputs are clamped to their physical range first, so the
/// function is total and never returns NaN for finite inputs.
///
/// # Examples
///
/// ```
/// use teg_thermal::{effectiveness, ExchangerArrangement};
///
/// // With zero transfer units nothing is exchanged.
/// assert_eq!(effectiveness(ExchangerArrangement::CounterFlow, 0.0, 0.5), 0.0);
/// // A balanced counter-flow exchanger approaches NTU/(1+NTU).
/// let eps = effectiveness(ExchangerArrangement::CounterFlow, 2.0, 1.0);
/// assert!((eps - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[inline]
#[must_use]
pub fn effectiveness(arrangement: ExchangerArrangement, ntu: f64, c_r: f64) -> f64 {
    let ntu = ntu.max(0.0);
    let c_r = c_r.clamp(0.0, 1.0);
    let eps = match arrangement {
        ExchangerArrangement::SingleStream => single_stream(ntu),
        ExchangerArrangement::CounterFlow => counter_flow(ntu, c_r),
        ExchangerArrangement::ParallelFlow => parallel_flow(ntu, c_r),
        ExchangerArrangement::CrossFlowBothUnmixed => cross_flow_both_unmixed(ntu, c_r),
        ExchangerArrangement::CrossFlowCmaxMixed => cross_flow_cmax_mixed(ntu, c_r),
    };
    eps.clamp(0.0, 1.0)
}

/// [`effectiveness`] with an explicit [`KernelMode`]: the bit-exact lane is
/// the reference implementation, the fast lane replaces the cross-flow
/// relation's second `powf` with a division (`NTU^0.78 = NTU / NTU^0.22`),
/// which agrees with the reference within a relative error far below the
/// documented `1e-9` tolerance bound.  All other arrangements are identical
/// in both lanes.
#[inline]
#[must_use]
pub fn effectiveness_with_mode(
    arrangement: ExchangerArrangement,
    ntu: f64,
    c_r: f64,
    mode: KernelMode,
) -> f64 {
    if mode.is_fast() && arrangement == ExchangerArrangement::CrossFlowBothUnmixed {
        let ntu = ntu.max(0.0);
        let c_r = c_r.clamp(0.0, 1.0);
        return cross_flow_both_unmixed_fast(ntu, c_r).clamp(0.0, 1.0);
    }
    effectiveness(arrangement, ntu, c_r)
}

#[inline]
fn single_stream(ntu: f64) -> f64 {
    1.0 - (-ntu).exp()
}

#[inline]
fn counter_flow(ntu: f64, c_r: f64) -> f64 {
    if c_r < 1e-12 {
        return single_stream(ntu);
    }
    if (c_r - 1.0).abs() < 1e-9 {
        return ntu / (1.0 + ntu);
    }
    let e = (-ntu * (1.0 - c_r)).exp();
    (1.0 - e) / (1.0 - c_r * e)
}

#[inline]
fn parallel_flow(ntu: f64, c_r: f64) -> f64 {
    if c_r < 1e-12 {
        return single_stream(ntu);
    }
    (1.0 - (-ntu * (1.0 + c_r)).exp()) / (1.0 + c_r)
}

#[inline]
fn cross_flow_both_unmixed(ntu: f64, c_r: f64) -> f64 {
    if c_r < 1e-12 {
        return single_stream(ntu);
    }
    if ntu <= 0.0 {
        return 0.0;
    }
    // Standard approximation (Incropera/Bergman Eq. 11.32):
    // ε = 1 − exp[ (1/Cr) · NTU^0.22 · ( exp(−Cr · NTU^0.78) − 1 ) ]
    let ntu022 = ntu.powf(0.22);
    let inner = (-c_r * ntu.powf(0.78)).exp() - 1.0;
    1.0 - ((ntu022 / c_r) * inner).exp()
}

#[inline]
fn cross_flow_both_unmixed_fast(ntu: f64, c_r: f64) -> f64 {
    if c_r < 1e-12 {
        return single_stream(ntu);
    }
    if ntu <= 0.0 {
        return 0.0;
    }
    // Same relation as `cross_flow_both_unmixed`, but NTU^0.78 is derived
    // from the already-computed NTU^0.22 (0.78 = 1 − 0.22), trading the
    // second `powf` — the expensive call in the per-sample thermal solve —
    // for one division.
    let ntu022 = ntu.powf(0.22);
    let inner = (-c_r * (ntu / ntu022)).exp() - 1.0;
    1.0 - ((ntu022 / c_r) * inner).exp()
}

#[inline]
fn cross_flow_cmax_mixed(ntu: f64, c_r: f64) -> f64 {
    if c_r < 1e-12 {
        return single_stream(ntu);
    }
    (1.0 / c_r) * (1.0 - (-c_r * (1.0 - (-ntu).exp())).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [ExchangerArrangement; 5] = [
        ExchangerArrangement::CounterFlow,
        ExchangerArrangement::ParallelFlow,
        ExchangerArrangement::CrossFlowBothUnmixed,
        ExchangerArrangement::CrossFlowCmaxMixed,
        ExchangerArrangement::SingleStream,
    ];

    #[test]
    fn zero_ntu_means_zero_effectiveness() {
        for arr in ALL {
            assert_eq!(effectiveness(arr, 0.0, 0.5), 0.0, "{arr:?}");
        }
    }

    #[test]
    fn effectiveness_is_bounded_and_monotone_in_ntu() {
        for arr in ALL {
            let mut last = 0.0;
            for i in 0..50 {
                let ntu = f64::from(i) * 0.2;
                let eps = effectiveness(arr, ntu, 0.6);
                assert!((0.0..=1.0).contains(&eps), "{arr:?} ntu={ntu} eps={eps}");
                assert!(eps + 1e-12 >= last, "{arr:?} not monotone at ntu={ntu}");
                last = eps;
            }
        }
    }

    #[test]
    fn counter_flow_dominates_parallel_flow() {
        for i in 1..30 {
            let ntu = f64::from(i) * 0.3;
            for j in 1..=10 {
                let c_r = f64::from(j) * 0.1;
                let cf = effectiveness(ExchangerArrangement::CounterFlow, ntu, c_r);
                let pf = effectiveness(ExchangerArrangement::ParallelFlow, ntu, c_r);
                assert!(
                    cf + 1e-12 >= pf,
                    "counterflow should dominate (ntu={ntu}, cr={c_r})"
                );
            }
        }
    }

    #[test]
    fn cross_flow_lies_between_parallel_and_counter_flow() {
        for i in 1..20 {
            let ntu = f64::from(i) * 0.4;
            let c_r = 0.75;
            let cf = effectiveness(ExchangerArrangement::CounterFlow, ntu, c_r);
            let xf = effectiveness(ExchangerArrangement::CrossFlowBothUnmixed, ntu, c_r);
            let pf = effectiveness(ExchangerArrangement::ParallelFlow, ntu, c_r);
            assert!(xf <= cf + 1e-9, "crossflow above counterflow at ntu={ntu}");
            assert!(
                xf + 1e-2 >= pf,
                "crossflow far below parallel flow at ntu={ntu}"
            );
        }
    }

    #[test]
    fn cr_zero_collapses_to_single_stream() {
        for arr in ALL {
            let a = effectiveness(arr, 1.7, 0.0);
            let b = effectiveness(ExchangerArrangement::SingleStream, 1.7, 0.0);
            assert!((a - b).abs() < 1e-12, "{arr:?}");
        }
    }

    #[test]
    fn balanced_counter_flow_closed_form() {
        for i in 1..=20 {
            let ntu = f64::from(i) * 0.5;
            let eps = effectiveness(ExchangerArrangement::CounterFlow, ntu, 1.0);
            assert!((eps - ntu / (1.0 + ntu)).abs() < 1e-12);
        }
    }

    #[test]
    fn textbook_crossflow_value() {
        // The standard approximation (Incropera/Bergman Eq. 11.32) evaluates
        // to ε ≈ 0.545 at NTU = 1, Cr = 0.5; the chart value lies within a
        // couple of percentage points of this.
        let eps = effectiveness(ExchangerArrangement::CrossFlowBothUnmixed, 1.0, 0.5);
        assert!((eps - 0.545).abs() < 0.02, "got {eps}");
        // And it must stay below the counter-flow bound at the same point.
        let cf = effectiveness(ExchangerArrangement::CounterFlow, 1.0, 0.5);
        assert!(eps < cf);
    }

    #[test]
    fn inputs_outside_physical_range_are_clamped() {
        let eps = effectiveness(ExchangerArrangement::CounterFlow, -3.0, 0.5);
        assert_eq!(eps, 0.0);
        let eps = effectiveness(ExchangerArrangement::CounterFlow, 2.0, 7.0);
        assert!((0.0..=1.0).contains(&eps));
        let eps = effectiveness(ExchangerArrangement::CrossFlowBothUnmixed, 2.0, -1.0);
        assert!((0.0..=1.0).contains(&eps));
    }

    #[test]
    fn fast_mode_matches_bit_exact_within_tolerance() {
        for arr in ALL {
            for i in 0..=60 {
                let ntu = f64::from(i) * 0.15;
                for j in 0..=10 {
                    let c_r = f64::from(j) * 0.1;
                    let exact = effectiveness_with_mode(arr, ntu, c_r, KernelMode::BitExact);
                    let fast = effectiveness_with_mode(arr, ntu, c_r, KernelMode::Fast);
                    assert_eq!(exact, effectiveness(arr, ntu, c_r), "{arr:?}");
                    assert!(
                        teg_units::approx_eq(exact, fast, 1e-12),
                        "{arr:?} ntu={ntu} cr={c_r}: {exact} vs {fast}"
                    );
                    // Only the cross-flow relation has a distinct fast lane.
                    if arr != ExchangerArrangement::CrossFlowBothUnmixed {
                        assert_eq!(exact.to_bits(), fast.to_bits(), "{arr:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn large_ntu_saturates_towards_one() {
        let eps = effectiveness(ExchangerArrangement::CounterFlow, 50.0, 0.3);
        assert!(eps > 0.99);
        let eps = effectiveness(ExchangerArrangement::SingleStream, 50.0, 0.0);
        assert!(eps > 0.99);
    }
}
