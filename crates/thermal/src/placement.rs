//! Placement of TEG modules along the S-shaped radiator fin path.

use teg_units::Meters;

use crate::error::ThermalError;

/// Evenly spaced placement of `N` TEG modules along the serpentine
/// (S-shaped) radiator flow path, entrance first.
///
/// Module `i` (1-based in the paper, 0-based here) is centred at distance
/// `(i + 0.5)·L/N` from the radiator entrance, so the first module sits just
/// after the entrance and the last just before the exit — exactly the
/// geometry of Fig. 2 in the paper.
///
/// # Examples
///
/// ```
/// use teg_thermal::SShapedPlacement;
/// use teg_units::Meters;
///
/// # fn main() -> Result<(), teg_thermal::ThermalError> {
/// let placement = SShapedPlacement::new(4)?;
/// let positions: Vec<_> = placement.positions(Meters::new(4.0)).collect();
/// assert_eq!(positions.len(), 4);
/// assert!((positions[0].value() - 0.5).abs() < 1e-12);
/// assert!((positions[3].value() - 3.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SShapedPlacement {
    module_count: usize,
}

impl SShapedPlacement {
    /// Creates a placement of `module_count` modules.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidGeometry`] if `module_count` is zero.
    pub fn new(module_count: usize) -> Result<Self, ThermalError> {
        if module_count == 0 {
            return Err(ThermalError::InvalidGeometry {
                reason: "placement needs at least one module".to_owned(),
            });
        }
        Ok(Self { module_count })
    }

    /// Number of modules placed along the path.
    #[must_use]
    pub const fn module_count(&self) -> usize {
        self.module_count
    }

    /// Iterator over the centre position of each module for a path of the
    /// given length, ordered from the radiator entrance to the exit.
    pub fn positions(&self, path_length: Meters) -> impl Iterator<Item = Meters> + '_ {
        let n = self.module_count as f64;
        let length = path_length.value();
        (0..self.module_count).map(move |i| Meters::new((i as f64 + 0.5) / n * length))
    }

    /// Centre position of a single module.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::PositionOutOfRange`] if `index` is not a valid
    /// module index.
    pub fn position_of(&self, index: usize, path_length: Meters) -> Result<Meters, ThermalError> {
        if index >= self.module_count {
            return Err(ThermalError::PositionOutOfRange {
                fraction: index as f64 / self.module_count as f64,
            });
        }
        let n = self.module_count as f64;
        Ok(Meters::new((index as f64 + 0.5) / n * path_length.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_modules_is_rejected() {
        assert!(SShapedPlacement::new(0).is_err());
    }

    #[test]
    fn positions_are_strictly_increasing_and_inside_path() {
        let placement = SShapedPlacement::new(100).unwrap();
        let length = Meters::new(3.2);
        let positions: Vec<_> = placement.positions(length).collect();
        assert_eq!(positions.len(), 100);
        for window in positions.windows(2) {
            assert!(window[1] > window[0]);
        }
        assert!(positions[0].value() > 0.0);
        assert!(positions[99].value() < length.value());
    }

    #[test]
    fn positions_are_symmetric_about_the_midpoint() {
        let placement = SShapedPlacement::new(10).unwrap();
        let length = Meters::new(2.0);
        let positions: Vec<_> = placement.positions(length).collect();
        for i in 0..5 {
            let left = positions[i].value();
            let right = positions[9 - i].value();
            assert!((left + right - length.value()).abs() < 1e-12);
        }
    }

    #[test]
    fn single_module_sits_in_the_middle() {
        let placement = SShapedPlacement::new(1).unwrap();
        let pos: Vec<_> = placement.positions(Meters::new(3.0)).collect();
        assert_eq!(pos.len(), 1);
        assert!((pos[0].value() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn position_of_matches_iterator() {
        let placement = SShapedPlacement::new(7).unwrap();
        let length = Meters::new(3.5);
        let from_iter: Vec<_> = placement.positions(length).collect();
        for (i, expected) in from_iter.iter().enumerate() {
            let got = placement.position_of(i, length).unwrap();
            assert!((got.value() - expected.value()).abs() < 1e-12);
        }
        assert!(placement.position_of(7, length).is_err());
    }
}
