//! The assembled radiator model: ε-NTU energy balance plus the 1-D surface
//! temperature profile of the paper's Eq. 1.

use teg_units::{Celsius, KernelMode};

use crate::distribution::SurfaceProfile;
use crate::error::ThermalError;
use crate::fluid::{AirProperties, AmbientState, CoolantProperties, CoolantState};
use crate::geometry::RadiatorGeometry;
use crate::ntu::{effectiveness_with_mode, ExchangerArrangement};

/// A finned-tube cross-flow radiator with fixed geometry and fluid property
/// models.
///
/// The radiator turns an instantaneous `(coolant state, ambient state)` pair
/// into either a global operating point (heat duty, outlet temperatures) or a
/// 1-D surface-temperature profile that the TEG array samples.
///
/// # Examples
///
/// ```
/// use teg_thermal::{Radiator, RadiatorGeometry, CoolantState, AmbientState};
/// use teg_units::Celsius;
///
/// # fn main() -> Result<(), teg_thermal::ThermalError> {
/// let radiator = Radiator::new(RadiatorGeometry::porter_ii());
/// let op = radiator.operating_point(
///     &CoolantState::new(Celsius::new(95.0), 0.8),
///     &AmbientState::new(Celsius::new(25.0), 1.2),
/// )?;
/// assert!(op.heat_duty_watts() > 0.0);
/// assert!(op.coolant_outlet() < Celsius::new(95.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Radiator {
    geometry: RadiatorGeometry,
    coolant_props: CoolantProperties,
    air_props: AirProperties,
    arrangement: ExchangerArrangement,
}

impl Radiator {
    /// Creates a radiator with the given core geometry and default fluid
    /// models (50/50 glycol coolant, standard air, cross-flow both unmixed).
    #[must_use]
    pub fn new(geometry: RadiatorGeometry) -> Self {
        Self {
            geometry,
            coolant_props: CoolantProperties::default(),
            air_props: AirProperties::default(),
            arrangement: ExchangerArrangement::CrossFlowBothUnmixed,
        }
    }

    /// Replaces the coolant property model.
    #[must_use]
    pub fn with_coolant(mut self, props: CoolantProperties) -> Self {
        self.coolant_props = props;
        self
    }

    /// Replaces the air property model.
    #[must_use]
    pub fn with_air(mut self, props: AirProperties) -> Self {
        self.air_props = props;
        self
    }

    /// Replaces the flow arrangement used for the ε-NTU balance.
    #[must_use]
    pub fn with_arrangement(mut self, arrangement: ExchangerArrangement) -> Self {
        self.arrangement = arrangement;
        self
    }

    /// Returns the core geometry.
    #[must_use]
    pub const fn geometry(&self) -> &RadiatorGeometry {
        &self.geometry
    }

    /// Solves the global ε-NTU energy balance for one instant.
    ///
    /// # Errors
    ///
    /// Returns an error if either flow rate is non-positive, any input is
    /// non-finite, or the coolant is not hotter than the ambient air.
    pub fn operating_point(
        &self,
        coolant: &CoolantState,
        ambient: &AmbientState,
    ) -> Result<RadiatorOperatingPoint, ThermalError> {
        self.operating_point_with_mode(coolant, ambient, KernelMode::BitExact)
    }

    /// [`Radiator::operating_point`] with an explicit [`KernelMode`] for the
    /// ε-NTU relation.  [`KernelMode::BitExact`] is the reference lane;
    /// [`KernelMode::Fast`] substitutes the tolerance-checked fast
    /// effectiveness kernel (see
    /// [`effectiveness_with_mode`](crate::effectiveness_with_mode)).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Radiator::operating_point`].
    pub fn operating_point_with_mode(
        &self,
        coolant: &CoolantState,
        ambient: &AmbientState,
        mode: KernelMode,
    ) -> Result<RadiatorOperatingPoint, ThermalError> {
        let c_hot = coolant.capacity_rate(&self.coolant_props)?;
        let c_cold = ambient.capacity_rate(&self.air_props)?;
        let t_hot_in = coolant.inlet_temperature();
        let t_cold_in = ambient.temperature();
        if t_hot_in.value() <= t_cold_in.value() {
            return Err(ThermalError::InvertedTemperatures {
                coolant_c: t_hot_in.value(),
                ambient_c: t_cold_in.value(),
            });
        }

        let c_min = c_hot.min(c_cold);
        let c_max = c_hot.max(c_cold);
        let c_r = c_min / c_max;
        let ntu = self.geometry.overall_conductance() / c_min;
        let eps = effectiveness_with_mode(self.arrangement, ntu, c_r, mode);

        let q_max = c_min * (t_hot_in.value() - t_cold_in.value());
        let q = eps * q_max;
        let t_hot_out = Celsius::new(t_hot_in.value() - q / c_hot);
        let t_cold_out = Celsius::new(t_cold_in.value() + q / c_cold);

        Ok(RadiatorOperatingPoint {
            heat_duty: q,
            effectiveness: eps,
            ntu,
            capacity_ratio: c_r,
            coolant_capacity_rate: c_hot,
            air_capacity_rate: c_cold,
            coolant_inlet: t_hot_in,
            coolant_outlet: t_hot_out,
            air_inlet: t_cold_in,
            air_outlet: t_cold_out,
        })
    }

    /// Builds the 1-D surface-temperature profile of Eq. 1 for one instant.
    ///
    /// The profile decays from the coolant inlet temperature towards the mean
    /// air temperature with decay constant `K / C_c` per metre of flow path,
    /// where `K` is the overall heat-transfer coefficient per unit length and
    /// `C_c` the air-side capacity rate.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Radiator::operating_point`].
    pub fn surface_profile(
        &self,
        coolant: &CoolantState,
        ambient: &AmbientState,
    ) -> Result<SurfaceProfile, ThermalError> {
        self.surface_profile_with_mode(coolant, ambient, KernelMode::BitExact)
    }

    /// [`Radiator::surface_profile`] with an explicit [`KernelMode`] for the
    /// ε-NTU relation behind the profile's energy balance.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Radiator::operating_point`].
    pub fn surface_profile_with_mode(
        &self,
        coolant: &CoolantState,
        ambient: &AmbientState,
        mode: KernelMode,
    ) -> Result<SurfaceProfile, ThermalError> {
        let op = self.operating_point_with_mode(coolant, ambient, mode)?;
        let k_per_length = self.geometry.overall_coefficient_per_length();
        let decay_per_meter = k_per_length / op.air_capacity_rate;
        SurfaceProfile::new(
            op.coolant_inlet,
            op.mean_air_temperature(),
            decay_per_meter,
            self.geometry.flow_path_length(),
        )
    }
}

/// The solved global energy balance of the radiator at one instant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadiatorOperatingPoint {
    heat_duty: f64,
    effectiveness: f64,
    ntu: f64,
    capacity_ratio: f64,
    coolant_capacity_rate: f64,
    air_capacity_rate: f64,
    coolant_inlet: Celsius,
    coolant_outlet: Celsius,
    air_inlet: Celsius,
    air_outlet: Celsius,
}

impl RadiatorOperatingPoint {
    /// Heat rejected from coolant to air, in watts.
    #[must_use]
    pub const fn heat_duty_watts(&self) -> f64 {
        self.heat_duty
    }

    /// Exchanger effectiveness ε at this operating point.
    #[must_use]
    pub const fn effectiveness(&self) -> f64 {
        self.effectiveness
    }

    /// Number of transfer units `UA / C_min`.
    #[must_use]
    pub const fn ntu(&self) -> f64 {
        self.ntu
    }

    /// Capacity-rate ratio `C_min / C_max`.
    #[must_use]
    pub const fn capacity_ratio(&self) -> f64 {
        self.capacity_ratio
    }

    /// Coolant-side capacity rate in W/K.
    #[must_use]
    pub const fn coolant_capacity_rate(&self) -> f64 {
        self.coolant_capacity_rate
    }

    /// Air-side capacity rate in W/K (`C_c` in Eq. 1).
    #[must_use]
    pub const fn air_capacity_rate(&self) -> f64 {
        self.air_capacity_rate
    }

    /// Coolant temperature at the radiator inlet.
    #[must_use]
    pub const fn coolant_inlet(&self) -> Celsius {
        self.coolant_inlet
    }

    /// Coolant temperature at the radiator outlet.
    #[must_use]
    pub const fn coolant_outlet(&self) -> Celsius {
        self.coolant_outlet
    }

    /// Air temperature entering the core.
    #[must_use]
    pub const fn air_inlet(&self) -> Celsius {
        self.air_inlet
    }

    /// Air temperature leaving the core.
    #[must_use]
    pub const fn air_outlet(&self) -> Celsius {
        self.air_outlet
    }

    /// Arithmetic mean of the air inlet and outlet temperatures, `T_c,a` in
    /// Eq. 1 of the paper.
    #[must_use]
    pub fn mean_air_temperature(&self) -> Celsius {
        Celsius::new(0.5 * (self.air_inlet.value() + self.air_outlet.value()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teg_units::Meters;

    fn radiator() -> Radiator {
        Radiator::new(RadiatorGeometry::porter_ii())
    }

    fn hot() -> CoolantState {
        CoolantState::new(Celsius::new(95.0), 0.8)
    }

    fn cool_air() -> AmbientState {
        AmbientState::new(Celsius::new(25.0), 1.2)
    }

    #[test]
    fn energy_balance_is_consistent() {
        let op = radiator().operating_point(&hot(), &cool_air()).unwrap();
        // q = C_h (T_h,i − T_h,o) = C_c (T_c,o − T_c,i)
        let q_hot =
            op.coolant_capacity_rate() * (op.coolant_inlet().value() - op.coolant_outlet().value());
        let q_cold = op.air_capacity_rate() * (op.air_outlet().value() - op.air_inlet().value());
        assert!((q_hot - op.heat_duty_watts()).abs() < 1e-6);
        assert!((q_cold - op.heat_duty_watts()).abs() < 1e-6);
    }

    #[test]
    fn outlet_temperatures_lie_between_inlets() {
        let op = radiator().operating_point(&hot(), &cool_air()).unwrap();
        assert!(op.coolant_outlet() < op.coolant_inlet());
        assert!(op.coolant_outlet() > op.air_inlet());
        assert!(op.air_outlet() > op.air_inlet());
        assert!(op.air_outlet() < op.coolant_inlet());
        assert!((0.0..=1.0).contains(&op.effectiveness()));
    }

    #[test]
    fn more_airflow_rejects_more_heat() {
        let r = radiator();
        let q_low = r
            .operating_point(&hot(), &AmbientState::new(Celsius::new(25.0), 0.6))
            .unwrap();
        let q_high = r
            .operating_point(&hot(), &AmbientState::new(Celsius::new(25.0), 2.0))
            .unwrap();
        assert!(q_high.heat_duty_watts() > q_low.heat_duty_watts());
    }

    #[test]
    fn hotter_coolant_rejects_more_heat() {
        let r = radiator();
        let q_cool = r
            .operating_point(&CoolantState::new(Celsius::new(80.0), 0.8), &cool_air())
            .unwrap();
        let q_hot = r
            .operating_point(&CoolantState::new(Celsius::new(100.0), 0.8), &cool_air())
            .unwrap();
        assert!(q_hot.heat_duty_watts() > q_cool.heat_duty_watts());
    }

    #[test]
    fn inverted_temperatures_are_rejected() {
        let err = radiator()
            .operating_point(
                &CoolantState::new(Celsius::new(20.0), 0.8),
                &AmbientState::new(Celsius::new(25.0), 1.2),
            )
            .unwrap_err();
        assert!(matches!(err, ThermalError::InvertedTemperatures { .. }));
    }

    #[test]
    fn profile_decays_from_inlet_towards_mean_air() {
        let r = radiator();
        let profile = r.surface_profile(&hot(), &cool_air()).unwrap();
        let op = r.operating_point(&hot(), &cool_air()).unwrap();
        let entrance = profile.at_distance(Meters::ZERO).unwrap();
        assert!((entrance.value() - 95.0).abs() < 1e-9);
        let exit = profile
            .at_distance(r.geometry().flow_path_length())
            .unwrap();
        assert!(exit < entrance);
        assert!(exit > op.mean_air_temperature());
    }

    #[test]
    fn profile_exit_consistent_with_energy_balance_scale() {
        // The paper's Eq. 1 describes the *surface* temperature seen by the
        // TEG hot sides, which sits between the local coolant temperature and
        // the air stream.  Its exit value must therefore lie below the ε-NTU
        // coolant outlet temperature and above the mean air temperature.
        let r = radiator();
        let profile = r.surface_profile(&hot(), &cool_air()).unwrap();
        let op = r.operating_point(&hot(), &cool_air()).unwrap();
        let exit = profile
            .at_distance(r.geometry().flow_path_length())
            .unwrap();
        assert!(
            exit < op.coolant_outlet(),
            "exit {exit} vs outlet {}",
            op.coolant_outlet()
        );
        assert!(exit > op.mean_air_temperature());
        // And the profile must show a material gradient for a 100-module
        // array to be worth reconfiguring: at least 10 K end to end.
        let entrance = profile.at_distance(Meters::ZERO).unwrap();
        assert!(entrance.value() - exit.value() > 10.0);
    }

    #[test]
    fn builder_style_customisation() {
        let r = radiator()
            .with_coolant(CoolantProperties::water())
            .with_air(AirProperties::standard())
            .with_arrangement(ExchangerArrangement::CounterFlow);
        let op = r.operating_point(&hot(), &cool_air()).unwrap();
        assert!(op.heat_duty_watts() > 0.0);
        // Counterflow is at least as effective as crossflow for same inputs.
        let cross = radiator().with_coolant(CoolantProperties::water());
        let op_cross = cross.operating_point(&hot(), &cool_air()).unwrap();
        assert!(op.effectiveness() + 1e-12 >= op_cross.effectiveness());
    }

    #[test]
    fn typical_vehicle_heat_duty_magnitude() {
        // A 3.0 L diesel at moderate load rejects tens of kW through the
        // radiator; the model should land in a plausible range rather than
        // watts or megawatts.
        let op = radiator().operating_point(&hot(), &cool_air()).unwrap();
        let q = op.heat_duty_watts();
        assert!(q > 3_000.0 && q < 100_000.0, "implausible heat duty {q} W");
    }
}
