//! Uniformly sampled time series used for drive-cycle signals and for the
//! per-module temperature histories consumed by the predictors.

use teg_units::Seconds;

/// One sample of a uniformly sampled series: a timestamp and a value.
///
/// # Examples
///
/// ```
/// use teg_thermal::TracePoint;
/// use teg_units::Seconds;
///
/// let p = TracePoint::new(Seconds::new(3.0), 92.5);
/// assert_eq!(p.value(), 92.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TracePoint {
    time: Seconds,
    value: f64,
}

impl TracePoint {
    /// Creates a sample at the given time.
    #[must_use]
    pub const fn new(time: Seconds, value: f64) -> Self {
        Self { time, value }
    }

    /// Timestamp of the sample.
    #[must_use]
    pub const fn time(&self) -> Seconds {
        self.time
    }

    /// Value of the sample.
    #[must_use]
    pub const fn value(&self) -> f64 {
        self.value
    }
}

/// A uniformly sampled scalar time series (fixed step, starting at t = 0).
///
/// The drive-cycle signals (coolant inlet temperature, coolant flow, vehicle
/// speed) and the per-module hot-side temperature histories handed to the
/// predictors are all [`TimeSeries`] values.
///
/// # Examples
///
/// ```
/// use teg_thermal::TimeSeries;
/// use teg_units::Seconds;
///
/// let mut series = TimeSeries::new(Seconds::new(1.0));
/// series.push(90.0);
/// series.push(91.0);
/// series.push(92.0);
/// assert_eq!(series.len(), 3);
/// assert_eq!(series.interpolate(Seconds::new(0.5)), Some(90.5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    step: Seconds,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series with the given sampling step.
    ///
    /// # Panics
    ///
    /// Panics if the step is not strictly positive and finite.
    #[must_use]
    pub fn new(step: Seconds) -> Self {
        Self::from_values(step, Vec::new())
    }

    /// Creates a series from existing samples.
    ///
    /// # Panics
    ///
    /// Panics if the step is not strictly positive and finite — the same
    /// validation [`TimeSeries::new`] applies (an infinite or NaN step would
    /// silently break [`TimeSeries::interpolate`] and
    /// [`TimeSeries::duration`]).
    #[must_use]
    pub fn from_values(step: Seconds, values: Vec<f64>) -> Self {
        assert!(
            step.value() > 0.0 && step.value().is_finite(),
            "sampling step must be positive and finite"
        );
        Self { step, values }
    }

    /// Sampling step.
    #[inline]
    #[must_use]
    pub const fn step(&self) -> Seconds {
        self.step
    }

    /// Number of samples.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` when the series holds no samples.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total covered duration (`(len − 1) · step`, zero for fewer than two
    /// samples).
    #[must_use]
    pub fn duration(&self) -> Seconds {
        if self.values.len() < 2 {
            Seconds::ZERO
        } else {
            self.step * (self.values.len() - 1) as f64
        }
    }

    /// Appends a sample at the next time step.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Returns the sample at `index`, if present.
    #[inline]
    #[must_use]
    pub fn get(&self, index: usize) -> Option<f64> {
        self.values.get(index).copied()
    }

    /// Returns the most recent sample, if any.
    #[inline]
    #[must_use]
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Returns the underlying values as a slice.
    #[inline]
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Linearly interpolates the series at an arbitrary time.
    ///
    /// Returns `None` for an empty series or a time outside the covered
    /// range.
    #[inline]
    #[must_use]
    pub fn interpolate(&self, time: Seconds) -> Option<f64> {
        if self.values.is_empty() || time.value() < 0.0 {
            return None;
        }
        let pos = time.value() / self.step.value();
        let lower = pos.floor() as usize;
        if lower >= self.values.len() {
            return None;
        }
        let upper = lower + 1;
        if upper >= self.values.len() {
            return if (pos - lower as f64).abs() < 1e-9 {
                Some(self.values[lower])
            } else {
                None
            };
        }
        let frac = pos - lower as f64;
        Some(self.values[lower] * (1.0 - frac) + self.values[upper] * frac)
    }

    /// Returns the trailing `count` samples (fewer if the series is shorter).
    #[must_use]
    pub fn tail(&self, count: usize) -> &[f64] {
        let start = self.values.len().saturating_sub(count);
        &self.values[start..]
    }

    /// Iterator over `(time, value)` samples.
    pub fn iter(&self) -> impl Iterator<Item = TracePoint> + '_ {
        self.values
            .iter()
            .enumerate()
            .map(move |(i, &v)| TracePoint::new(self.step * i as f64, v))
    }

    /// Minimum sample value, if the series is non-empty.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(a) => Some(a.min(v)),
        })
    }

    /// Maximum sample value, if the series is non-empty.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(a) => Some(a.max(v)),
        })
    }

    /// Arithmetic mean of the samples, if the series is non-empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }
}

impl Extend<f64> for TimeSeries {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        TimeSeries::from_values(Seconds::new(1.0), vec![90.0, 91.0, 93.0, 92.0])
    }

    #[test]
    fn length_and_duration() {
        let s = series();
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.duration().value(), 3.0);
        assert_eq!(TimeSeries::new(Seconds::new(1.0)).duration(), Seconds::ZERO);
    }

    #[test]
    fn interpolation_between_samples() {
        let s = series();
        assert_eq!(s.interpolate(Seconds::new(0.0)), Some(90.0));
        assert_eq!(s.interpolate(Seconds::new(0.5)), Some(90.5));
        assert_eq!(s.interpolate(Seconds::new(2.5)), Some(92.5));
        assert_eq!(s.interpolate(Seconds::new(3.0)), Some(92.0));
        assert_eq!(s.interpolate(Seconds::new(3.5)), None);
        assert_eq!(s.interpolate(Seconds::new(-1.0)), None);
    }

    #[test]
    fn tail_returns_trailing_window() {
        let s = series();
        assert_eq!(s.tail(2), &[93.0, 92.0]);
        assert_eq!(s.tail(10), &[90.0, 91.0, 93.0, 92.0]);
        assert_eq!(s.tail(0), &[] as &[f64]);
    }

    #[test]
    fn statistics() {
        let s = series();
        assert_eq!(s.min(), Some(90.0));
        assert_eq!(s.max(), Some(93.0));
        assert_eq!(s.mean(), Some(91.5));
        let empty = TimeSeries::new(Seconds::new(1.0));
        assert_eq!(empty.min(), None);
        assert_eq!(empty.max(), None);
        assert_eq!(empty.mean(), None);
    }

    #[test]
    fn iteration_yields_timestamps() {
        let s = series();
        let points: Vec<_> = s.iter().collect();
        assert_eq!(points.len(), 4);
        assert_eq!(points[2].time().value(), 2.0);
        assert_eq!(points[2].value(), 93.0);
    }

    #[test]
    fn push_extend_and_accessors() {
        let mut s = TimeSeries::new(Seconds::new(0.5));
        s.push(1.0);
        s.extend([2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(1), Some(2.0));
        assert_eq!(s.get(9), None);
        assert_eq!(s.last(), Some(3.0));
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(s.step().value(), 0.5);
    }

    #[test]
    #[should_panic(expected = "sampling step must be positive")]
    fn zero_step_is_rejected() {
        let _ = TimeSeries::new(Seconds::ZERO);
    }

    #[test]
    #[should_panic(expected = "sampling step must be positive and finite")]
    fn infinite_step_is_rejected_by_from_values() {
        let _ = TimeSeries::from_values(Seconds::new(f64::INFINITY), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "sampling step must be positive and finite")]
    fn nan_step_is_rejected_by_from_values() {
        let _ = TimeSeries::from_values(Seconds::new(f64::NAN), vec![1.0]);
    }
}
