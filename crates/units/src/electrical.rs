//! Electrical quantities: voltage, current, resistance, conductance and power.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

macro_rules! scalar_quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Creates the quantity from a raw value in SI units.
            #[must_use]
            pub const fn new(value: f64) -> Self {
                Self(value)
            }

            /// Returns the raw value in SI units.
            #[must_use]
            pub const fn value(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[must_use]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Returns the larger of two quantities.
            #[must_use]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the smaller of two quantities.
            #[must_use]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns `true` when the value is finite (not NaN or infinite).
            #[must_use]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!("{:.4} ", $unit), self.0)
            }
        }

        impl Add for $name {
            type Output = Self;
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl AddAssign for $name {
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl Sub for $name {
            type Output = Self;
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl Neg for $name {
            type Output = Self;
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|v| v.0).sum())
            }
        }
    };
}

scalar_quantity!(
    /// Electric potential in volts.
    ///
    /// # Examples
    ///
    /// ```
    /// use teg_units::{Volts, Amps};
    /// let p = Volts::new(13.8) * Amps::new(3.0);
    /// assert!((p.value() - 41.4).abs() < 1e-12);
    /// ```
    Volts,
    "V"
);

scalar_quantity!(
    /// Electric current in amperes.
    ///
    /// # Examples
    ///
    /// ```
    /// use teg_units::{Amps, Ohms};
    /// let v = Amps::new(2.0) * Ohms::new(1.5);
    /// assert_eq!(v.value(), 3.0);
    /// ```
    Amps,
    "A"
);

scalar_quantity!(
    /// Electrical resistance in ohms.
    ///
    /// # Examples
    ///
    /// ```
    /// use teg_units::Ohms;
    /// let r = Ohms::new(1.7);
    /// assert!((r.to_siemens().value() - 1.0 / 1.7).abs() < 1e-12);
    /// ```
    Ohms,
    "Ω"
);

scalar_quantity!(
    /// Electrical conductance in siemens (the reciprocal of resistance).
    ///
    /// Parallel combinations of TEG modules are naturally expressed as sums of
    /// conductances, which is why the array solver works in siemens.
    ///
    /// # Examples
    ///
    /// ```
    /// use teg_units::Siemens;
    /// let g = Siemens::new(0.5) + Siemens::new(0.25);
    /// assert!((g.to_ohms().value() - 1.0 / 0.75).abs() < 1e-12);
    /// ```
    Siemens,
    "S"
);

scalar_quantity!(
    /// Power in watts.
    ///
    /// # Examples
    ///
    /// ```
    /// use teg_units::{Watts, Seconds};
    /// let e = Watts::new(55.0) * Seconds::new(2.0);
    /// assert_eq!(e.value(), 110.0);
    /// ```
    Watts,
    "W"
);

impl Ohms {
    /// Converts a resistance into the equivalent conductance.
    ///
    /// # Panics
    ///
    /// Panics if the resistance is zero (a short has no finite conductance).
    #[must_use]
    pub fn to_siemens(self) -> Siemens {
        assert!(self.0 != 0.0, "zero resistance has no finite conductance");
        Siemens::new(1.0 / self.0)
    }
}

impl Siemens {
    /// Converts a conductance into the equivalent resistance.
    ///
    /// # Panics
    ///
    /// Panics if the conductance is zero (an open circuit has no finite
    /// resistance).
    #[must_use]
    pub fn to_ohms(self) -> Ohms {
        assert!(self.0 != 0.0, "zero conductance has no finite resistance");
        Ohms::new(1.0 / self.0)
    }
}

impl Mul<Amps> for Volts {
    type Output = Watts;

    fn mul(self, rhs: Amps) -> Watts {
        Watts::new(self.value() * rhs.value())
    }
}

impl Mul<Volts> for Amps {
    type Output = Watts;

    fn mul(self, rhs: Volts) -> Watts {
        rhs * self
    }
}

impl Mul<Ohms> for Amps {
    type Output = Volts;

    fn mul(self, rhs: Ohms) -> Volts {
        Volts::new(self.value() * rhs.value())
    }
}

impl Mul<Amps> for Ohms {
    type Output = Volts;

    fn mul(self, rhs: Amps) -> Volts {
        rhs * self
    }
}

impl Div<Ohms> for Volts {
    type Output = Amps;

    fn div(self, rhs: Ohms) -> Amps {
        Amps::new(self.value() / rhs.value())
    }
}

impl Div<Amps> for Volts {
    type Output = Ohms;

    fn div(self, rhs: Amps) -> Ohms {
        Ohms::new(self.value() / rhs.value())
    }
}

impl Mul<Volts> for Siemens {
    type Output = Amps;

    fn mul(self, rhs: Volts) -> Amps {
        Amps::new(self.value() * rhs.value())
    }
}

impl Div<Watts> for Watts {
    type Output = f64;

    fn div(self, rhs: Watts) -> f64 {
        self.value() / rhs.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ohms_law_identities() {
        let v = Volts::new(6.0);
        let r = Ohms::new(2.0);
        let i = v / r;
        assert_eq!(i.value(), 3.0);
        assert_eq!((i * r).value(), 6.0);
        assert_eq!((v / i).value(), 2.0);
    }

    #[test]
    fn power_from_voltage_and_current() {
        let p = Volts::new(4.0) * Amps::new(2.5);
        assert_eq!(p.value(), 10.0);
        let p2 = Amps::new(2.5) * Volts::new(4.0);
        assert_eq!(p, p2);
    }

    #[test]
    fn conductance_resistance_round_trip() {
        let r = Ohms::new(1.7);
        let back = r.to_siemens().to_ohms();
        assert!((r.value() - back.value()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero resistance")]
    fn zero_resistance_has_no_conductance() {
        let _ = Ohms::new(0.0).to_siemens();
    }

    #[test]
    #[should_panic(expected = "zero conductance")]
    fn zero_conductance_has_no_resistance() {
        let _ = Siemens::new(0.0).to_ohms();
    }

    #[test]
    fn conductance_times_voltage_is_current() {
        let i = Siemens::new(0.5) * Volts::new(4.0);
        assert_eq!(i.value(), 2.0);
    }

    #[test]
    fn watt_ratio_is_dimensionless() {
        let ratio = Watts::new(30.0) / Watts::new(60.0);
        assert_eq!(ratio, 0.5);
    }

    #[test]
    fn sums_and_scaling() {
        let total: Amps = [1.0, 2.0, 3.0].iter().map(|&x| Amps::new(x)).sum();
        assert_eq!(total.value(), 6.0);
        assert_eq!((total * 2.0).value(), 12.0);
        assert_eq!((total / 3.0).value(), 2.0);
        assert_eq!((-total).value(), -6.0);
    }

    #[test]
    fn display_includes_units() {
        assert_eq!(format!("{}", Volts::new(13.8)), "13.8000 V");
        assert_eq!(format!("{}", Watts::new(1.5)), "1.5000 W");
        assert_eq!(format!("{}", Ohms::new(2.0)), "2.0000 Ω");
    }

    #[test]
    fn min_max_abs_helpers() {
        assert_eq!(Amps::new(-2.0).abs().value(), 2.0);
        assert_eq!(Watts::new(3.0).max(Watts::new(5.0)).value(), 5.0);
        assert_eq!(Watts::new(3.0).min(Watts::new(5.0)).value(), 3.0);
        assert!(Volts::new(1.0).is_finite());
        assert!(!Volts::new(f64::NAN).is_finite());
    }
}
