//! Energy quantities.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::electrical::Watts;
use crate::time::Seconds;

/// Energy in joules.
///
/// Table I of the paper reports harvested energy and switching-overhead
/// energy in joules over the 800-second drive; the simulator accumulates
/// both as [`Joules`].
///
/// # Examples
///
/// ```
/// use teg_units::{Joules, Watts, Seconds};
///
/// let step = Watts::new(50.0) * Seconds::new(1.0);
/// let mut total = Joules::ZERO;
/// total += step;
/// assert_eq!(total, Joules::new(50.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Self = Self(0.0);

    /// Creates an energy from a value in joules.
    #[must_use]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the raw value in joules.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Self {
        Self(self.0.abs())
    }

    /// Returns the larger of two energies.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns the average power that would produce this energy over the
    /// given duration.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero or negative.
    #[must_use]
    pub fn average_power(self, duration: Seconds) -> Watts {
        assert!(duration.value() > 0.0, "duration must be positive");
        Watts::new(self.0 / duration.value())
    }

    /// Returns `true` when the value is finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} J", self.0)
    }
}

impl Add for Joules {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl SubAssign for Joules {
    fn sub_assign(&mut self, rhs: Self) {
        self.0 -= rhs.0;
    }
}

impl Neg for Joules {
    type Output = Self;
    fn neg(self) -> Self {
        Self(-self.0)
    }
}

impl Mul<f64> for Joules {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<f64> for Joules {
    type Output = Self;
    fn div(self, rhs: f64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Div<Joules> for Joules {
    type Output = f64;
    fn div(self, rhs: Joules) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|v| v.0).sum())
    }
}

impl Mul<Seconds> for Watts {
    type Output = Joules;

    fn mul(self, rhs: Seconds) -> Joules {
        Joules::new(self.value() * rhs.value())
    }
}

impl Mul<Watts> for Seconds {
    type Output = Joules;

    fn mul(self, rhs: Watts) -> Joules {
        rhs * self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_time_is_energy() {
        let e = Watts::new(25.0) * Seconds::new(4.0);
        assert_eq!(e, Joules::new(100.0));
        let e2 = Seconds::new(4.0) * Watts::new(25.0);
        assert_eq!(e, e2);
    }

    #[test]
    fn energy_accumulation() {
        let mut acc = Joules::ZERO;
        for _ in 0..10 {
            acc += Joules::new(1.5);
        }
        assert!((acc.value() - 15.0).abs() < 1e-12);
        acc -= Joules::new(5.0);
        assert!((acc.value() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn average_power_round_trip() {
        let e = Joules::new(120.0);
        let p = e.average_power(Seconds::new(60.0));
        assert_eq!(p.value(), 2.0);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn average_power_rejects_zero_duration() {
        let _ = Joules::new(1.0).average_power(Seconds::new(0.0));
    }

    #[test]
    fn energy_ratio_is_dimensionless() {
        assert_eq!(Joules::new(30.0) / Joules::new(60.0), 0.5);
    }

    #[test]
    fn scaling_and_negation() {
        let e = Joules::new(10.0);
        assert_eq!((e * 3.0).value(), 30.0);
        assert_eq!((e / 4.0).value(), 2.5);
        assert_eq!((-e).value(), -10.0);
        assert_eq!(e.abs().value(), 10.0);
        assert_eq!((-e).abs().value(), 10.0);
        assert_eq!(e.max(Joules::new(12.0)).value(), 12.0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Joules = (1..=5).map(|i| Joules::new(f64::from(i))).sum();
        assert_eq!(total.value(), 15.0);
    }

    #[test]
    fn display_includes_unit() {
        assert_eq!(format!("{}", Joules::new(43309.6)), "43309.60 J");
    }
}
