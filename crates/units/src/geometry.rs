//! Geometric quantities used by the radiator model: lengths and areas.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A length in metres.
///
/// The 1-D radiator model evaluates the coolant temperature at a distance `d`
/// (in metres) from the radiator entrance; module positions along the
/// S-shaped fin are also lengths.
///
/// # Examples
///
/// ```
/// use teg_units::Meters;
///
/// let tube = Meters::new(0.6);
/// let half = tube / 2.0;
/// assert_eq!(half.value(), 0.3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Meters(f64);

impl Meters {
    /// Zero length.
    pub const ZERO: Self = Self(0.0);

    /// Creates a length from a value in metres.
    #[must_use]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the raw value in metres.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns `true` when the value is finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns the larger of two lengths.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns the smaller of two lengths.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }
}

impl fmt::Display for Meters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} m", self.0)
    }
}

impl Add for Meters {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Meters {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Meters {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Mul<f64> for Meters {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<f64> for Meters {
    type Output = Self;
    fn div(self, rhs: f64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Div<Meters> for Meters {
    type Output = f64;
    fn div(self, rhs: Meters) -> f64 {
        self.0 / rhs.0
    }
}

impl Mul<Meters> for Meters {
    type Output = SquareMeters;
    fn mul(self, rhs: Meters) -> SquareMeters {
        SquareMeters::new(self.0 * rhs.0)
    }
}

impl Sum for Meters {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|v| v.0).sum())
    }
}

/// An area in square metres.
///
/// Heat-exchanger surface areas (tube outer area, fin area) are expressed in
/// square metres when computing the overall heat-transfer coefficient.
///
/// # Examples
///
/// ```
/// use teg_units::{Meters, SquareMeters};
///
/// let a = Meters::new(0.6) * Meters::new(0.4);
/// assert_eq!(a, SquareMeters::new(0.24));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SquareMeters(f64);

impl SquareMeters {
    /// Zero area.
    pub const ZERO: Self = Self(0.0);

    /// Creates an area from a value in square metres.
    #[must_use]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the raw value in square metres.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl fmt::Display for SquareMeters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.5} m²", self.0)
    }
}

impl Add for SquareMeters {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sub for SquareMeters {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Mul<f64> for SquareMeters {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<f64> for SquareMeters {
    type Output = Self;
    fn div(self, rhs: f64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Sum for SquareMeters {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|v| v.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_arithmetic() {
        let a = Meters::new(1.2);
        let b = Meters::new(0.3);
        assert_eq!((a + b).value(), 1.5);
        assert!(((a - b).value() - 0.9).abs() < 1e-12);
        assert_eq!((a * 2.0).value(), 2.4);
        assert_eq!((a / 4.0).value(), 0.3);
        assert_eq!(a / b, 4.0);
    }

    #[test]
    fn length_product_is_area() {
        let area = Meters::new(0.5) * Meters::new(0.2);
        assert!((area.value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn area_arithmetic() {
        let a = SquareMeters::new(0.3);
        let b = SquareMeters::new(0.1);
        assert!(((a + b).value() - 0.4).abs() < 1e-12);
        assert!(((a - b).value() - 0.2).abs() < 1e-12);
        assert!(((a * 2.0).value() - 0.6).abs() < 1e-12);
        assert!(((a / 3.0).value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sums_work() {
        let l: Meters = (1..=3).map(|i| Meters::new(f64::from(i))).sum();
        assert_eq!(l.value(), 6.0);
        let a: SquareMeters = (1..=3).map(|i| SquareMeters::new(f64::from(i))).sum();
        assert_eq!(a.value(), 6.0);
    }

    #[test]
    fn display_includes_units() {
        assert_eq!(format!("{}", Meters::new(0.6)), "0.6000 m");
        assert_eq!(format!("{}", SquareMeters::new(0.24)), "0.24000 m²");
    }

    #[test]
    fn min_max_helpers() {
        assert_eq!(Meters::new(1.0).max(Meters::new(2.0)).value(), 2.0);
        assert_eq!(Meters::new(1.0).min(Meters::new(2.0)).value(), 1.0);
        assert!(Meters::new(1.0).is_finite());
    }
}
