//! Kernel execution mode shared by the compute hot paths.
//!
//! The workspace's numerical kernels come in two flavours.  The default,
//! [`KernelMode::BitExact`], performs the reference sequence of IEEE-754
//! operations in the reference order; its outputs are pinned bit-for-bit by
//! golden traces and wire frames and must never drift.  The opt-in
//! [`KernelMode::Fast`] lane is allowed to restructure the same mathematics —
//! chunked/unrolled summation, reciprocal-based `powf` splits, recurrence
//! strength reduction — trading bitwise identity for throughput while staying
//! within a documented relative-error tolerance of the bit-exact lane.
//!
//! The mode is a plain value threaded from scenario construction down into
//! the kernels, so a single simulation tree is either wholly bit-exact or
//! wholly fast; nothing consults global state.

/// Which implementation of the compute kernels a simulation runs.
///
/// # Examples
///
/// ```
/// use teg_units::KernelMode;
///
/// assert_eq!(KernelMode::default(), KernelMode::BitExact);
/// assert_eq!("fast".parse(), Ok(KernelMode::Fast));
/// assert_eq!(KernelMode::Fast.token(), "fast");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelMode {
    /// Reference kernels: identical IEEE-754 operations in identical order,
    /// outputs pinned by golden traces.  The default everywhere.
    #[default]
    BitExact,
    /// Vectorised/restructured kernels: equivalent mathematics within a
    /// documented relative-error tolerance, not bit-identical.
    Fast,
}

impl KernelMode {
    /// Compact lowercase token used in grid spec strings and wire payloads.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Self::BitExact => "bitexact",
            Self::Fast => "fast",
        }
    }

    /// Returns `true` for the [`KernelMode::Fast`] lane.
    #[must_use]
    pub fn is_fast(self) -> bool {
        self == Self::Fast
    }
}

impl std::fmt::Display for KernelMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

impl std::str::FromStr for KernelMode {
    type Err = ParseKernelModeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bitexact" => Ok(Self::BitExact),
            "fast" => Ok(Self::Fast),
            other => Err(ParseKernelModeError {
                token: other.to_string(),
            }),
        }
    }
}

/// Error returned when a kernel-mode token is not recognised.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKernelModeError {
    token: String,
}

impl std::fmt::Display for ParseKernelModeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown kernel mode {:?} (expected \"bitexact\" or \"fast\")",
            self.token
        )
    }
}

impl std::error::Error for ParseKernelModeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_bit_exact() {
        assert_eq!(KernelMode::default(), KernelMode::BitExact);
        assert!(!KernelMode::default().is_fast());
        assert!(KernelMode::Fast.is_fast());
    }

    #[test]
    fn tokens_round_trip() {
        for mode in [KernelMode::BitExact, KernelMode::Fast] {
            assert_eq!(mode.token().parse::<KernelMode>(), Ok(mode));
            assert_eq!(mode.to_string(), mode.token());
        }
    }

    #[test]
    fn unknown_token_is_rejected_with_context() {
        let err = "vector".parse::<KernelMode>().unwrap_err();
        assert!(err.to_string().contains("vector"), "{err}");
        assert!(err.to_string().contains("bitexact"), "{err}");
    }
}
