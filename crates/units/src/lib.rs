//! Physical-quantity newtypes shared by the TEG harvesting suite.
//!
//! Every crate in the workspace exchanges physical values (temperatures,
//! voltages, currents, energies, distances, durations).  Bare `f64`s make it
//! far too easy to add a Celsius reading to a kelvin difference or to feed a
//! power where an energy is expected, so this crate provides thin, zero-cost
//! wrappers with:
//!
//! * explicit constructors and accessors (`Celsius::new`, [`Celsius::value`]),
//! * only the arithmetic that is physically meaningful (e.g. subtracting two
//!   [`Celsius`] yields a [`TemperatureDelta`], multiplying [`Volts`] by
//!   [`Amps`] yields [`Watts`], integrating [`Watts`] over [`Seconds`] yields
//!   [`Joules`]),
//! * conversions between related representations (Celsius ↔ Kelvin),
//! * `Display` implementations with units for report output.
//!
//! # Examples
//!
//! ```
//! use teg_units::{Celsius, Volts, Amps, Seconds};
//!
//! let hot = Celsius::new(96.0);
//! let ambient = Celsius::new(25.0);
//! let delta = hot - ambient;
//! assert!((delta.kelvin() - 71.0).abs() < 1e-12);
//!
//! let power = Volts::new(12.0) * Amps::new(2.5);
//! let energy = power * Seconds::new(10.0);
//! assert!((energy.value() - 300.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod electrical;
mod energy;
mod geometry;
mod kernel;
mod temperature;
mod time;

pub use electrical::{Amps, Ohms, Siemens, Volts, Watts};
pub use energy::Joules;
pub use geometry::{Meters, SquareMeters};
pub use kernel::{KernelMode, ParseKernelModeError};
pub use temperature::{Celsius, Kelvin, TemperatureDelta};
pub use time::{Hertz, Milliseconds, Seconds};

/// Helper used across the workspace for approximate floating point
/// comparisons in tests and validation code.
///
/// Returns `true` when `a` and `b` are within `tol` of each other, where the
/// comparison is absolute for small magnitudes and relative for large ones.
///
/// # Examples
///
/// ```
/// assert!(teg_units::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!teg_units::approx_eq(1.0, 1.1, 1e-3));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= tol * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_for_small_values() {
        assert!(approx_eq(0.0, 1e-12, 1e-9));
        assert!(!approx_eq(0.0, 1e-3, 1e-9));
    }

    #[test]
    fn approx_eq_relative_for_large_values() {
        assert!(approx_eq(1e9, 1e9 + 10.0, 1e-6));
        assert!(!approx_eq(1e9, 1.1e9, 1e-6));
    }

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Celsius>();
        assert_send_sync::<Kelvin>();
        assert_send_sync::<TemperatureDelta>();
        assert_send_sync::<Volts>();
        assert_send_sync::<Amps>();
        assert_send_sync::<Ohms>();
        assert_send_sync::<Watts>();
        assert_send_sync::<Joules>();
        assert_send_sync::<Seconds>();
    }
}
