//! Temperature quantities: absolute temperatures in Celsius and kelvin, and
//! temperature differences.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Offset between the Celsius and kelvin scales.
pub(crate) const CELSIUS_TO_KELVIN_OFFSET: f64 = 273.15;

/// An absolute temperature on the Celsius scale.
///
/// This is the unit used for user-facing temperatures throughout the suite
/// (coolant inlet temperature, ambient temperature, module hot-side
/// temperature) because the paper and the underlying datasheets quote
/// everything in °C.
///
/// # Examples
///
/// ```
/// use teg_units::Celsius;
///
/// let coolant = Celsius::new(95.5);
/// assert_eq!(coolant.value(), 95.5);
/// assert!((coolant.to_kelvin().value() - 368.65).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Celsius(f64);

impl Celsius {
    /// Creates a temperature from a value in degrees Celsius.
    #[must_use]
    pub const fn new(degrees: f64) -> Self {
        Self(degrees)
    }

    /// Returns the raw value in degrees Celsius.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to an absolute temperature in kelvin.
    #[must_use]
    pub fn to_kelvin(self) -> Kelvin {
        Kelvin::new(self.0 + CELSIUS_TO_KELVIN_OFFSET)
    }

    /// Returns the larger of two temperatures.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns the smaller of two temperatures.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Clamps the temperature to the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn clamp(self, lo: Self, hi: Self) -> Self {
        assert!(lo.0 <= hi.0, "invalid clamp range");
        Self(self.0.clamp(lo.0, hi.0))
    }

    /// Returns `true` when the value is finite (not NaN or infinite).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Display for Celsius {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} °C", self.0)
    }
}

impl From<Kelvin> for Celsius {
    fn from(k: Kelvin) -> Self {
        Self(k.value() - CELSIUS_TO_KELVIN_OFFSET)
    }
}

/// An absolute temperature in kelvin.
///
/// Used where thermodynamic relations require an absolute scale (e.g. fluid
/// property correlations).
///
/// # Examples
///
/// ```
/// use teg_units::{Celsius, Kelvin};
///
/// let k = Kelvin::new(300.0);
/// let c: Celsius = k.into();
/// assert!((c.value() - 26.85).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Kelvin(f64);

impl Kelvin {
    /// Creates a temperature from a value in kelvin.
    #[must_use]
    pub const fn new(kelvin: f64) -> Self {
        Self(kelvin)
    }

    /// Returns the raw value in kelvin.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to the Celsius scale.
    #[must_use]
    pub fn to_celsius(self) -> Celsius {
        Celsius::from(self)
    }
}

impl fmt::Display for Kelvin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} K", self.0)
    }
}

impl From<Celsius> for Kelvin {
    fn from(c: Celsius) -> Self {
        c.to_kelvin()
    }
}

/// A temperature *difference*, identical in magnitude on the Celsius and
/// kelvin scales.
///
/// This is the ΔT that drives every thermoelectric relation in the paper
/// (Eq. 2): the difference between a module's hot-side temperature and the
/// heatsink / ambient temperature.
///
/// # Examples
///
/// ```
/// use teg_units::{Celsius, TemperatureDelta};
///
/// let delta = Celsius::new(90.0) - Celsius::new(25.0);
/// assert_eq!(delta, TemperatureDelta::new(65.0));
/// assert_eq!(delta.kelvin(), 65.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct TemperatureDelta(f64);

impl TemperatureDelta {
    /// A zero temperature difference.
    pub const ZERO: Self = Self(0.0);

    /// Creates a temperature difference in kelvin (equivalently °C).
    #[must_use]
    pub const fn new(kelvin: f64) -> Self {
        Self(kelvin)
    }

    /// Returns the difference in kelvin.
    #[must_use]
    pub const fn kelvin(self) -> f64 {
        self.0
    }

    /// Returns the difference clamped below at zero.
    ///
    /// TEG modules mounted on a radiator never see a *negative* useful ΔT in
    /// this application (the hot side is the radiator surface); a negative
    /// value would correspond to the module acting as a cooler, which the
    /// electrical model does not cover, so callers clamp before evaluating.
    #[must_use]
    pub fn clamp_non_negative(self) -> Self {
        Self(self.0.max(0.0))
    }

    /// Absolute value of the difference.
    #[must_use]
    pub fn abs(self) -> Self {
        Self(self.0.abs())
    }

    /// Returns `true` when the value is finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl fmt::Display for TemperatureDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} K", self.0)
    }
}

impl Sub for Celsius {
    type Output = TemperatureDelta;

    fn sub(self, rhs: Self) -> TemperatureDelta {
        TemperatureDelta::new(self.0 - rhs.0)
    }
}

impl Add<TemperatureDelta> for Celsius {
    type Output = Celsius;

    fn add(self, rhs: TemperatureDelta) -> Celsius {
        Celsius::new(self.0 + rhs.0)
    }
}

impl Sub<TemperatureDelta> for Celsius {
    type Output = Celsius;

    fn sub(self, rhs: TemperatureDelta) -> Celsius {
        Celsius::new(self.0 - rhs.0)
    }
}

impl AddAssign<TemperatureDelta> for Celsius {
    fn add_assign(&mut self, rhs: TemperatureDelta) {
        self.0 += rhs.0;
    }
}

impl SubAssign<TemperatureDelta> for Celsius {
    fn sub_assign(&mut self, rhs: TemperatureDelta) {
        self.0 -= rhs.0;
    }
}

impl Add for TemperatureDelta {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl Sub for TemperatureDelta {
    type Output = Self;

    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Neg for TemperatureDelta {
    type Output = Self;

    fn neg(self) -> Self {
        Self(-self.0)
    }
}

impl Mul<f64> for TemperatureDelta {
    type Output = Self;

    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<f64> for TemperatureDelta {
    type Output = Self;

    fn div(self, rhs: f64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Sum for TemperatureDelta {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|d| d.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_kelvin_round_trip() {
        let c = Celsius::new(42.5);
        let back = c.to_kelvin().to_celsius();
        assert!((c.value() - back.value()).abs() < 1e-12);
    }

    #[test]
    fn subtracting_celsius_gives_delta() {
        let d = Celsius::new(100.0) - Celsius::new(30.0);
        assert_eq!(d.kelvin(), 70.0);
    }

    #[test]
    fn adding_delta_moves_temperature() {
        let t = Celsius::new(50.0) + TemperatureDelta::new(10.0);
        assert_eq!(t.value(), 60.0);
        let t = t - TemperatureDelta::new(25.0);
        assert_eq!(t.value(), 35.0);
    }

    #[test]
    fn delta_clamps_negative_values() {
        assert_eq!(
            TemperatureDelta::new(-5.0).clamp_non_negative().kelvin(),
            0.0
        );
        assert_eq!(
            TemperatureDelta::new(5.0).clamp_non_negative().kelvin(),
            5.0
        );
    }

    #[test]
    fn delta_arithmetic() {
        let a = TemperatureDelta::new(10.0);
        let b = TemperatureDelta::new(4.0);
        assert_eq!((a + b).kelvin(), 14.0);
        assert_eq!((a - b).kelvin(), 6.0);
        assert_eq!((-a).kelvin(), -10.0);
        assert_eq!((a * 2.0).kelvin(), 20.0);
        assert_eq!((a / 2.0).kelvin(), 5.0);
    }

    #[test]
    fn delta_sum_over_iterator() {
        let total: TemperatureDelta = (1..=4).map(|i| TemperatureDelta::new(f64::from(i))).sum();
        assert_eq!(total.kelvin(), 10.0);
    }

    #[test]
    fn celsius_clamp_and_extremes() {
        let t = Celsius::new(120.0);
        assert_eq!(
            t.clamp(Celsius::new(0.0), Celsius::new(100.0)).value(),
            100.0
        );
        assert_eq!(Celsius::new(40.0).max(Celsius::new(60.0)).value(), 60.0);
        assert_eq!(Celsius::new(40.0).min(Celsius::new(60.0)).value(), 40.0);
    }

    #[test]
    #[should_panic(expected = "invalid clamp range")]
    fn celsius_clamp_rejects_inverted_range() {
        let _ = Celsius::new(1.0).clamp(Celsius::new(10.0), Celsius::new(0.0));
    }

    #[test]
    fn display_formats_include_units() {
        assert_eq!(format!("{}", Celsius::new(25.0)), "25.000 °C");
        assert_eq!(format!("{}", Kelvin::new(300.0)), "300.000 K");
        assert_eq!(format!("{}", TemperatureDelta::new(65.0)), "65.000 K");
    }

    #[test]
    fn compound_assignments() {
        let mut t = Celsius::new(20.0);
        t += TemperatureDelta::new(5.0);
        assert_eq!(t.value(), 25.0);
        t -= TemperatureDelta::new(10.0);
        assert_eq!(t.value(), 15.0);
    }
}
