//! Time-related quantities: durations in seconds and milliseconds, and
//! frequencies.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A duration in seconds.
///
/// The simulation clock, reconfiguration periods and prediction horizons are
/// all expressed in seconds, matching the paper's 1 Hz temperature trace and
/// 0.5 s reconfiguration period.
///
/// # Examples
///
/// ```
/// use teg_units::Seconds;
///
/// let period = Seconds::new(0.5);
/// assert_eq!((period * 4.0).value(), 2.0);
/// assert_eq!(period.to_milliseconds().value(), 500.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(f64);

impl Seconds {
    /// Zero duration.
    pub const ZERO: Self = Self(0.0);

    /// Creates a duration from a value in seconds.
    #[must_use]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the raw value in seconds.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to milliseconds.
    #[must_use]
    pub fn to_milliseconds(self) -> Milliseconds {
        Milliseconds::new(self.0 * 1e3)
    }

    /// Returns the corresponding frequency (1 / period).
    ///
    /// # Panics
    ///
    /// Panics if the duration is zero or negative.
    #[must_use]
    pub fn to_frequency(self) -> Hertz {
        assert!(self.0 > 0.0, "period must be positive to form a frequency");
        Hertz::new(1.0 / self.0)
    }

    /// Returns `true` when the value is finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns the larger of two durations.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} s", self.0)
    }
}

impl Add for Seconds {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Mul<f64> for Seconds {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<f64> for Seconds {
    type Output = Self;
    fn div(self, rhs: f64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Div<Seconds> for Seconds {
    type Output = f64;
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Seconds {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|v| v.0).sum())
    }
}

/// A duration in milliseconds.
///
/// Table I reports average algorithm runtime in milliseconds, so runtime
/// instrumentation uses this type for its report output.
///
/// # Examples
///
/// ```
/// use teg_units::Milliseconds;
///
/// let rt = Milliseconds::new(2.6);
/// assert!((rt.to_seconds().value() - 0.0026).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Milliseconds(f64);

impl Milliseconds {
    /// Zero duration.
    pub const ZERO: Self = Self(0.0);

    /// Creates a duration from a value in milliseconds.
    #[must_use]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the raw value in milliseconds.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts to seconds.
    #[must_use]
    pub fn to_seconds(self) -> Seconds {
        Seconds::new(self.0 * 1e-3)
    }
}

impl fmt::Display for Milliseconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} ms", self.0)
    }
}

impl Add for Milliseconds {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl AddAssign for Milliseconds {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for Milliseconds {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl Mul<f64> for Milliseconds {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl Div<f64> for Milliseconds {
    type Output = Self;
    fn div(self, rhs: f64) -> Self {
        Self(self.0 / rhs)
    }
}

impl Sum for Milliseconds {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        Self(iter.map(|v| v.0).sum())
    }
}

impl From<Seconds> for Milliseconds {
    fn from(s: Seconds) -> Self {
        s.to_milliseconds()
    }
}

impl From<Milliseconds> for Seconds {
    fn from(ms: Milliseconds) -> Self {
        ms.to_seconds()
    }
}

/// A frequency in hertz.
///
/// # Examples
///
/// ```
/// use teg_units::Hertz;
///
/// let f = Hertz::new(2.0);
/// assert_eq!(f.to_period().value(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Hertz(f64);

impl Hertz {
    /// Creates a frequency from a value in hertz.
    #[must_use]
    pub const fn new(value: f64) -> Self {
        Self(value)
    }

    /// Returns the raw value in hertz.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Returns the corresponding period (1 / frequency).
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero or negative.
    #[must_use]
    pub fn to_period(self) -> Seconds {
        assert!(self.0 > 0.0, "frequency must be positive to form a period");
        Seconds::new(1.0 / self.0)
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} Hz", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_milliseconds_round_trip() {
        let s = Seconds::new(0.5);
        let back = s.to_milliseconds().to_seconds();
        assert!((s.value() - back.value()).abs() < 1e-12);
        let ms: Milliseconds = s.into();
        assert_eq!(ms.value(), 500.0);
        let s2: Seconds = ms.into();
        assert_eq!(s2, s);
    }

    #[test]
    fn frequency_period_round_trip() {
        let f = Seconds::new(0.25).to_frequency();
        assert_eq!(f.value(), 4.0);
        assert_eq!(f.to_period().value(), 0.25);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_has_no_frequency() {
        let _ = Seconds::ZERO.to_frequency();
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_frequency_has_no_period() {
        let _ = Hertz::new(0.0).to_period();
    }

    #[test]
    fn arithmetic_behaves() {
        let a = Seconds::new(1.5);
        let b = Seconds::new(0.5);
        assert_eq!((a + b).value(), 2.0);
        assert_eq!((a - b).value(), 1.0);
        assert_eq!((a * 2.0).value(), 3.0);
        assert_eq!((a / 3.0).value(), 0.5);
        assert_eq!(a / b, 3.0);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn millisecond_arithmetic() {
        let total: Milliseconds = [2.6, 4.1, 37.2].iter().map(|&x| Milliseconds::new(x)).sum();
        assert!((total.value() - 43.9).abs() < 1e-12);
        assert!((total / 3.0).value() > 14.0);
    }

    #[test]
    fn sums_and_display() {
        let total: Seconds = (0..4).map(|_| Seconds::new(0.5)).sum();
        assert_eq!(total.value(), 2.0);
        assert_eq!(format!("{}", Seconds::new(0.5)), "0.500 s");
        assert_eq!(format!("{}", Milliseconds::new(2.6)), "2.6000 ms");
        assert_eq!(format!("{}", Hertz::new(2.0)), "2.000 Hz");
    }
}
