//! Using the library on a different heat source: an industrial-boiler
//! economiser with a much longer flow path and a larger module count —
//! the "larger scale systems" the paper's conclusion points at.
//!
//! Run with `cargo run --release --example custom_radiator`.

use teg_harvest::reconfig::SchemeSpec;
use teg_harvest::sim::{Scenario, SimulationEngine};
use teg_harvest::thermal::RadiatorGeometry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::builder()
        .module_count(200)
        .duration_seconds(90)
        .seed(11)
        .geometry(RadiatorGeometry::industrial_boiler())
        .build()?;
    println!(
        "industrial heat-exchanger path: {} with {} modules",
        scenario.radiator().geometry().flow_path_length(),
        scenario.module_count()
    );

    let engine = SimulationEngine::new(scenario);
    let specs = [
        SchemeSpec::dnor(),
        SchemeSpec::inor(),
        SchemeSpec::baseline_square_grid(200),
    ];

    println!(
        "{:<10} {:>14} {:>14} {:>12} {:>14}",
        "scheme", "energy (J)", "overhead (J)", "switches", "ideal frac"
    );
    for spec in specs {
        let mut scheme = spec.build();
        let report = engine.run(scheme.as_mut())?;
        println!(
            "{:<10} {:>14.1} {:>14.2} {:>12} {:>14.3}",
            report.scheme(),
            report.net_energy().value(),
            report.overhead_energy().value(),
            report.switch_count(),
            report.ideal_fraction()
        );
    }
    Ok(())
}
