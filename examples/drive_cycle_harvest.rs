//! Full-chain harvesting comparison over a synthetic drive-cycle window:
//! DNOR vs INOR vs EHTR vs the static baseline (the experiment behind
//! Figs. 6–7 and Table I, on a shorter window so it runs quickly in debug
//! builds).
//!
//! Run with `cargo run --release --example drive_cycle_harvest`.

use teg_harvest::reconfig::SchemeSpec;
use teg_harvest::sim::{Scenario, SimulationEngine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::builder()
        .module_count(100)
        .duration_seconds(120)
        .seed(2024)
        .build()?;
    let engine = SimulationEngine::new(scenario);

    println!(
        "{:<10} {:>14} {:>16} {:>10} {:>16}",
        "scheme", "energy (J)", "overhead (J)", "switches", "avg runtime (ms)"
    );
    // The shared preset, so this example can never drift from the lineup
    // Table I and the sweep subsystem use.
    for spec in SchemeSpec::paper_field(100) {
        let mut scheme = spec.build();
        let report = engine.run(scheme.as_mut())?;
        let (energy, overhead, runtime) = report.table1_row();
        println!(
            "{:<10} {:>14.1} {:>16.2} {:>10} {:>16.3}",
            report.scheme(),
            energy,
            overhead,
            report.switch_count(),
            runtime
        );
    }
    println!("\n(120-second window; run the teg-bench `table1_comparison` binary for the full 800 s drive)");
    Ok(())
}
