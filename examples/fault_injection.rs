//! Driving a degraded TEG array: a hand-written fault plan, streamed
//! step-by-step, with the paper's four schemes compared on the same
//! degradation.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```

use teg_array::{ModuleFault, SwitchStuck};
use teg_reconfig::{Inor, SensorFault};
use teg_sim::{
    Comparison, FaultAction, FaultEvent, FaultPlan, RuntimePolicy, Scenario, SimSession,
};
use teg_units::Seconds;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 120-second drive over 20 modules with a deliberate mid-drive
    // degradation story: one module opens, a neighbour ages to half output,
    // a switch pair welds shut, and one thermocouple goes noisy — with one
    // repair along the way.
    let plan = FaultPlan::new(vec![
        FaultEvent::new(
            30,
            FaultAction::Module {
                module: 4,
                fault: ModuleFault::OpenCircuit,
            },
        ),
        FaultEvent::new(
            45,
            FaultAction::Module {
                module: 5,
                fault: ModuleFault::Derated(0.5),
            },
        ),
        FaultEvent::new(
            60,
            FaultAction::Switch {
                link: 9,
                stuck: SwitchStuck::Closed,
            },
        ),
        FaultEvent::new(
            60,
            FaultAction::Sensor {
                module: 12,
                fault: SensorFault::Noisy { sigma: 2.0 },
            },
        ),
        FaultEvent::new(90, FaultAction::ModuleRepair { module: 4 }),
    ])
    .with_sensor_seed(7);

    println!("fault plan: {plan}");

    let scenario = Scenario::builder()
        .module_count(20)
        .duration_seconds(120)
        .seed(42)
        .fault_plan(plan)
        .build()?;

    // Stream one INOR session and watch the degradation happen live.
    let mut inor = Inor::default();
    let mut session = SimSession::new(&scenario, &mut inor)?;
    println!("\n  t(s)  power(W)  faults  events");
    while let Some(record) = session.step()? {
        if record.fault_events() > 0 || (record.time().value() as usize).is_multiple_of(30) {
            println!(
                "  {:>4}  {:>8.2}  {:>6}  {:>6}",
                record.time().value(),
                record.array_power().value(),
                record.faults_active(),
                record.fault_events(),
            );
        }
    }
    let summary = session.summary();
    drop(session);
    println!(
        "\nINOR: {:.1} J net, {} fault events fired, {}/{} steps degraded, {:.0} % of \
         decisions under faults",
        summary.net_energy().value(),
        summary.fault_events(),
        summary.faulted_steps(),
        summary.steps(),
        100.0 * summary.runtime().fault_share(),
    );

    // The full Table I field over the same degraded scenario.
    let report = Comparison::paper_schemes(&scenario)
        .runtime_policy(RuntimePolicy::Fixed(Seconds::new(0.002)))
        .run()?;
    println!("\nTable I under this fault plan:\n{report}");
    Ok(())
}
