//! Compare the three temperature predictors (MLR, BPNN, SVR) on a synthetic
//! drive cycle — the experiment behind the paper's Fig. 5.
//!
//! Run with `cargo run --release --example prediction_comparison`.

use teg_harvest::predict::metrics::mape;
use teg_harvest::predict::{
    BackPropagationNetwork, MultipleLinearRegression, Predictor, SupportVectorRegression,
};
use teg_harvest::thermal::DriveCycle;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cycle = DriveCycle::porter_ii_800s(7)?;
    let series = cycle.coolant_temperature_series();
    let values = series.values();
    let split = 600; // train on the first 600 s, score on the rest

    let mut predictors: Vec<Box<dyn Predictor>> = vec![
        Box::new(MultipleLinearRegression::new(5)?),
        Box::new(BackPropagationNetwork::new(5, 8, 42)?),
        Box::new(SupportVectorRegression::new(5, 42)?),
    ];

    println!(
        "{:<6} {:>18} {:>18}",
        "method", "1-s MAPE (%)", "2-s MAPE (%)"
    );
    for predictor in &mut predictors {
        predictor.fit(&values[..split])?;
        for horizon in [1usize, 2] {
            let mut actual = Vec::new();
            let mut forecast = Vec::new();
            for t in split..(values.len() - horizon) {
                let prediction = predictor.forecast(&values[..t], horizon)?;
                forecast.push(prediction[horizon - 1]);
                actual.push(values[t + horizon - 1]);
            }
            let err = mape(&actual, &forecast)?;
            if horizon == 1 {
                print!("{:<6} {:>18.4}", predictor.name(), err);
            } else {
                println!(" {:>18.4}", err);
            }
        }
    }
    println!("\nMLR should show the smallest error, matching the paper's choice for DNOR.");
    Ok(())
}
