//! Quickstart: build a small TEG array on a radiator temperature gradient,
//! let INOR pick a configuration and compare it with the fixed grid.
//!
//! Run with `cargo run --example quickstart`.

use teg_harvest::array::{ideal_power, Configuration, TegArray};
use teg_harvest::device::{TegDatasheet, TegModule};
use teg_harvest::reconfig::{Inor, ReconfigInputs, Reconfigurer};
use teg_harvest::units::Celsius;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 20 TGM-199-1.4-0.8 modules along the radiator, entrance first.
    let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
    let array = TegArray::uniform(module, 20);

    // A typical hot-to-cold surface profile (°C) and the ambient heatsink.
    let ambient = Celsius::new(25.0);
    let temperatures: Vec<f64> = (0..20).map(|i| 95.0 - 2.2 * i as f64).collect();
    let history = vec![temperatures];
    let inputs = ReconfigInputs::new(&array, &history, ambient)?;
    let deltas = inputs.current_deltas();

    // The fixed wiring a non-reconfigurable array would use.
    let grid = Configuration::uniform(20, 5)?;
    let grid_power = array.mpp_power(&grid, &deltas)?;

    // One INOR decision.
    let mut inor = Inor::default();
    let decision = inor.decide(&inputs, &grid)?;
    let chosen = decision
        .configuration()
        .expect("INOR always proposes a configuration");
    let inor_power = array.mpp_power(chosen, &deltas)?;
    let ideal = ideal_power(array.modules(), &deltas)?;

    println!("fixed grid          : {grid} -> {grid_power}");
    println!("INOR configuration  : {chosen} -> {inor_power}");
    println!("ideal (sum of MPPs) : {ideal}");
    println!(
        "INOR captures {:.1}% of ideal vs {:.1}% for the fixed grid (runtime {})",
        100.0 * (inor_power / ideal),
        100.0 * (grid_power / ideal),
        decision.computation().to_milliseconds(),
    );
    Ok(())
}
