//! Scalability of INOR (O(N)) versus the prior-work EHTR re-implementation
//! as the array grows — the motivation for the paper's claim that the
//! approach pays off most on industrial boilers and heat exchangers.
//!
//! Run with `cargo run --release --example scalability_study`.

use std::time::Instant;

use teg_harvest::array::{Configuration, TegArray};
use teg_harvest::device::{TegDatasheet, TegModule};
use teg_harvest::reconfig::{Ehtr, Inor, ReconfigInputs, Reconfigurer};
use teg_harvest::units::Celsius;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "modules", "INOR (ms)", "EHTR (ms)", "ratio"
    );

    for &n in &[25usize, 50, 100, 200, 400] {
        let array = TegArray::uniform(module.clone(), n);
        let temps: Vec<f64> = (0..n).map(|i| 96.0 - 40.0 * i as f64 / n as f64).collect();
        let history = vec![temps];
        let inputs = ReconfigInputs::new(&array, &history, Celsius::new(25.0))?;
        let current = Configuration::uniform(n, (n as f64).sqrt() as usize)?;

        let time_of = |scheme: &mut dyn Reconfigurer| -> Result<f64, Box<dyn std::error::Error>> {
            // Warm up once, then time a few repetitions.
            scheme.decide(&inputs, &current)?;
            let reps = 5;
            let start = Instant::now();
            for _ in 0..reps {
                scheme.decide(&inputs, &current)?;
            }
            Ok(start.elapsed().as_secs_f64() * 1e3 / reps as f64)
        };

        let inor_ms = time_of(&mut Inor::default())?;
        let ehtr_ms = time_of(&mut Ehtr::default())?;
        println!(
            "{n:>8} {inor_ms:>14.4} {ehtr_ms:>14.4} {:>10.1}",
            ehtr_ms / inor_ms
        );
    }
    println!("\nThe ratio grows with N: INOR stays linear while EHTR's DP blows up.");
    Ok(())
}
