//! Scalability of INOR (O(N)) versus the prior-work EHTR re-implementation
//! as the array grows — the motivation for the paper's claim that the
//! approach pays off most on industrial boilers and heat exchangers.
//!
//! Rebuilt on the scenario-sweep subsystem: each array size is one
//! [`ScenarioGrid`] executed by the work-stealing [`SweepRunner`], and the
//! per-scheme mean runtimes come from the sweep's summaries instead of a
//! hand-rolled timing loop.
//!
//! Run with `cargo run --release --example scalability_study`.

use teg_harvest::sim::{ScenarioGrid, SchemeLineup, SweepRunner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>8} {:>14} {:>14} {:>10}",
        "modules", "INOR (ms)", "EHTR (ms)", "ratio"
    );

    for &n in &[25usize, 50, 100, 200, 400] {
        let grid = ScenarioGrid::builder()
            .module_counts([n])
            .seeds([7, 8])
            .duration_seconds(30)
            .lineups([
                SchemeLineup::parse("fixed:heuristics:inor+ehtr").expect("a valid lineup token")
            ])
            .build()?;
        // One worker: the study times decisions, so concurrent cells must
        // not contend for the cores being measured.
        let report = SweepRunner::new().workers(1).run(&grid)?;
        let inor_ms = report.summary("INOR").expect("ran").mean_runtime().value();
        let ehtr_ms = report.summary("EHTR").expect("ran").mean_runtime().value();
        println!(
            "{n:>8} {inor_ms:>14.4} {ehtr_ms:>14.4} {:>10.1}",
            ehtr_ms / inor_ms
        );
    }
    println!("\nThe ratio grows with N: INOR stays linear while EHTR's DP blows up.");
    Ok(())
}
