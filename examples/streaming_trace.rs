//! Streaming a Fig. 6-style power trace to CSV without buffering the run.
//!
//! A [`SimSession`] advances one drive-cycle second at a time; a
//! [`CsvSink`] observer writes each record to disk the moment it is
//! produced, and a [`StepFn`] observer keeps a couple of running statistics.
//! No record history accumulates in memory — the session's own state is
//! bounded by the scheme's telemetry lookback (the scenario's precomputed
//! thermal trace, shared by every session, is the only per-drive-length
//! allocation).
//!
//! Run with `cargo run --example streaming_trace`.

use std::cell::Cell;
use std::fs::File;
use std::io::BufWriter;

use teg_harvest::reconfig::Dnor;
use teg_harvest::sim::{CsvSink, Scenario, SimSession, StepFn};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's evaluation scenario, restricted to the 120-second window
    // Figs. 6–7 plot (t = 300 s .. 420 s, well after warm-up).
    let scenario = Scenario::paper_table1(2024)?.window(300, 420)?;

    let path = std::env::temp_dir().join("fig6_dnor_trace.csv");
    let mut csv = CsvSink::new(BufWriter::new(File::create(&path)?));

    let peak = Cell::new(f64::MIN);
    let switches_seen = Cell::new(0usize);
    let mut stats = StepFn::new(|record| {
        peak.set(peak.get().max(record.array_power().value()));
        if record.switched() {
            switches_seen.set(switches_seen.get() + 1);
        }
    });

    let mut dnor = Dnor::default();
    let mut session = SimSession::new(&scenario, &mut dnor)?;
    session.attach(&mut csv).attach(&mut stats);

    // Drive the cycle one second at a time; each record is streamed to the
    // CSV file as soon as it exists.
    while let Some(record) = session.step()? {
        if record.switched() {
            println!(
                "t = {:>5.0} s: DNOR rewired to {} groups",
                record.time().value(),
                record.group_count()
            );
        }
    }

    let summary = session.summary();
    drop(session);
    let rows = csv.rows();
    csv.finish()?;

    println!();
    println!("streamed {rows} rows to {}", path.display());
    println!(
        "{}: net {:.1} J over {} ({} switches, peak {:.1} W, {:.1}% of ideal)",
        summary.scheme(),
        summary.net_energy().value(),
        summary.duration(),
        switches_seen.get(),
        peak.get(),
        100.0 * summary.ideal_fraction(),
    );
    Ok(())
}
