//! Quickstart for the parallel scenario-sweep subsystem: build a parameter
//! grid, run it across all cores, and read the aggregated report.
//!
//! Run with `cargo run --release --example sweep_quickstart`.

use teg_harvest::device::VariationModel;
use teg_harvest::sim::{DriveProfile, ScenarioGrid, SchemeLineup, SweepRunner};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The cross-product of every axis: 2 module counts × 3 seeds × 1 drive
    // × 2 variation models × 1 lineup = 12 scenario samples = 12 cells.
    let grid = ScenarioGrid::builder()
        .module_counts([50, 100])
        .seeds([1, 2, 3])
        .drives([DriveProfile::named("city", 120)])
        .variations([VariationModel::none(), VariationModel::new(0.03, 0.05)?])
        .lineups([SchemeLineup::paper()])
        .build()?;
    println!(
        "grid: {} cells over {} distinct scenario samples",
        grid.len(),
        grid.samples().len()
    );

    // The runner defaults to one worker per available core; results are
    // ordered by cell index no matter how the pool interleaves, and each
    // sample's thermal trace is solved exactly once.
    let report = SweepRunner::new().run(&grid)?;
    println!(
        "thermal solves: {} (expected {})\n",
        report.thermal_solves(),
        grid.expected_thermal_solves()
    );

    println!("{report}");
    for cell in report.cells().iter().take(2) {
        println!("{}:", cell.key());
        print!("{}", cell.report().table1());
    }
    if let Some(best) = report.best_scheme() {
        println!(
            "\nbest scheme by mean net energy: {} ({:.1} J over {} cells)",
            best.scheme(),
            best.mean_net_energy().value(),
            best.cells()
        );
    }
    Ok(())
}
