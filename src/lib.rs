//! Umbrella crate for the TEG reconfiguration suite.
//!
//! This crate exists so the repository's `examples/` and `tests/` can address
//! every workspace library through one dependency.  Downstream users should
//! depend on the individual crates (`teg-reconfig`, `teg-sim`, …) directly.

#![forbid(unsafe_code)]

pub use teg_array as array;
pub use teg_device as device;
pub use teg_power as power;
pub use teg_predict as predict;
pub use teg_reconfig as reconfig;
pub use teg_serve as serve;
pub use teg_sim as sim;
pub use teg_thermal as thermal;
pub use teg_units as units;
