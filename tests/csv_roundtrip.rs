//! CSV round-trip: the rows a streaming [`CsvSink`] emits re-parse into the
//! header, row count and values of the session that produced them —
//! including the fault-event columns introduced with the fault-injection
//! subsystem.

use teg_harvest::array::ModuleFault;
use teg_harvest::reconfig::{Inor, SensorFault};
use teg_harvest::sim::{
    CsvSink, FaultAction, FaultEvent, FaultPlan, RuntimePolicy, Scenario, SimSession, StepRecord,
    CSV_HEADER,
};
use teg_harvest::units::Seconds;

/// A short degraded session recorded twice: once through the streaming CSV
/// sink, once as the in-memory records.
fn run_session() -> (Vec<StepRecord>, String) {
    let plan = FaultPlan::new(vec![
        FaultEvent::new(
            4,
            FaultAction::Module {
                module: 1,
                fault: ModuleFault::Derated(0.6),
            },
        ),
        FaultEvent::new(
            7,
            FaultAction::Sensor {
                module: 3,
                fault: SensorFault::Stuck,
            },
        ),
        FaultEvent::new(10, FaultAction::ModuleRepair { module: 1 }),
    ]);
    let scenario = Scenario::builder()
        .module_count(6)
        .duration_seconds(14)
        .seed(9)
        .fault_plan(plan)
        .build()
        .expect("scenario");
    let mut sink = CsvSink::new(Vec::new());
    let mut inor = Inor::default();
    let mut session = SimSession::new(&scenario, &mut inor)
        .expect("session")
        .with_runtime_policy(RuntimePolicy::Fixed(Seconds::new(0.003)));
    session.attach(&mut sink);
    let mut records = Vec::new();
    while let Some(record) = session.step().expect("step") {
        records.push(record);
    }
    drop(session);
    assert_eq!(sink.rows(), records.len());
    let bytes = sink.finish().expect("no I/O errors on a Vec sink");
    (records, String::from_utf8(bytes).expect("utf-8 CSV"))
}

#[test]
fn emitted_csv_reparses_with_matching_header_rows_and_values() {
    let (records, csv) = run_session();
    let mut lines = csv.lines();

    // Header: exactly the shared constant, fault columns included.
    let header = lines.next().expect("header row");
    assert_eq!(header, CSV_HEADER);
    let columns: Vec<&str> = header.split(',').collect();
    assert_eq!(columns.last(), Some(&"fault_events"));
    assert_eq!(columns[columns.len() - 2], "faults_active");

    // Row count: one data row per simulated step.
    let rows: Vec<&str> = lines.collect();
    assert_eq!(rows.len(), records.len());
    assert_eq!(rows.len(), 14);

    // Values: every field re-parses and matches the record it came from, to
    // the precision the format prints.
    for (row, record) in rows.iter().zip(&records) {
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(fields.len(), columns.len(), "ragged row: {row}");
        let number = |i: usize| -> f64 {
            fields[i]
                .parse()
                .unwrap_or_else(|_| panic!("field {i} of {row}"))
        };
        assert!((number(0) - record.time().value()).abs() < 0.05);
        assert!((number(1) - record.array_power().value()).abs() < 1e-4);
        assert!((number(2) - record.net_power().value()).abs() < 1e-4);
        assert!((number(3) - record.delivered_power().value()).abs() < 1e-4);
        assert!((number(4) - record.ideal_power().value()).abs() < 1e-4);
        assert!((number(5) - record.ideal_ratio()).abs() < 1e-5);
        assert_eq!(fields[6].parse::<usize>().unwrap(), record.group_count());
        assert_eq!(
            fields[7].parse::<u8>().unwrap(),
            u8::from(record.switched())
        );
        assert!((number(8) - record.overhead_energy().value()).abs() < 1e-5);
        assert!((number(9) - record.computation().to_milliseconds().value()).abs() < 1e-5);
        assert_eq!(fields[10].parse::<usize>().unwrap(), record.faults_active());
        assert_eq!(fields[11].parse::<usize>().unwrap(), record.fault_events());
    }

    // The fault columns carry the plan's story: healthy prefix, the derate
    // at step 4, the stuck sensor joining at 7, the repair at 10.
    let fault_counts: Vec<usize> = records.iter().map(StepRecord::faults_active).collect();
    assert_eq!(fault_counts[..4], [0, 0, 0, 0]);
    assert_eq!(fault_counts[4], 1);
    assert_eq!(fault_counts[7], 2);
    assert_eq!(fault_counts[10], 1);
    let event_total: usize = records.iter().map(StepRecord::fault_events).sum();
    assert_eq!(event_total, 3);
}

#[test]
fn csv_matches_the_batch_renderer() {
    use teg_harvest::sim::records_to_csv;
    let (records, csv) = run_session();
    assert_eq!(csv, records_to_csv(&records));
}
