//! End-to-end comparison of all four schemes on one shared scenario —
//! asserting the qualitative shape of the paper's Table I.

use teg_harvest::reconfig::{Dnor, Ehtr, Inor, StaticBaseline};
use teg_harvest::sim::{Scenario, SimulationEngine, SimulationReport};

fn run_all(modules: usize, seconds: usize, seed: u64) -> [SimulationReport; 4] {
    let scenario = Scenario::builder()
        .module_count(modules)
        .duration_seconds(seconds)
        .seed(seed)
        .build()
        .expect("valid scenario");
    let engine = SimulationEngine::new(scenario);
    [
        engine.run(&mut Dnor::default()).expect("DNOR run"),
        engine.run(&mut Inor::default()).expect("INOR run"),
        engine.run(&mut Ehtr::default()).expect("EHTR run"),
        engine
            .run(&mut StaticBaseline::square_grid(modules))
            .expect("baseline run"),
    ]
}

#[test]
fn table1_ordering_holds_on_a_short_drive() {
    let [dnor, inor, ehtr, baseline] = run_all(40, 60, 99);

    // Every reconfiguring scheme beats the static wiring on net energy.
    assert!(dnor.net_energy().value() > baseline.net_energy().value());
    assert!(inor.net_energy().value() > baseline.net_energy().value());
    assert!(ehtr.net_energy().value() > baseline.net_energy().value());

    // DNOR's whole point: drastically lower switching overhead than the
    // fixed-period schemes, with at least comparable energy.
    assert!(dnor.overhead_energy().value() < 0.25 * inor.overhead_energy().value());
    assert!(dnor.overhead_energy().value() < 0.25 * ehtr.overhead_energy().value());
    assert!(dnor.net_energy().value() >= 0.98 * inor.net_energy().value());

    // The two instantaneous schemes deliver nearly identical energy.
    let ratio = inor.net_energy().value() / ehtr.net_energy().value();
    assert!(
        (0.97..=1.03).contains(&ratio),
        "INOR/EHTR energy ratio {ratio}"
    );

    // And the baseline never switches (it starts from its own wiring).
    assert_eq!(baseline.switch_count(), 0);
}

#[test]
fn dnor_switches_orders_of_magnitude_less_than_fixed_period_schemes() {
    let [dnor, inor, ehtr, _] = run_all(30, 80, 5);
    // The fixed-period schemes re-apply their configuration every 0.5 s
    // (160 applications over 80 s) and therefore accumulate dead-time
    // overhead on every period; DNOR only pays for its rare actual switches.
    assert_eq!(inor.runtime().invocations(), 160);
    assert_eq!(ehtr.runtime().invocations(), 160);
    assert!(dnor.switch_count() <= inor.switch_count());
    assert!(
        dnor.overhead_energy().value() * 20.0 < inor.overhead_energy().value(),
        "DNOR overhead {} should be well over an order of magnitude below INOR {}",
        dnor.overhead_energy(),
        inor.overhead_energy()
    );
    assert!(dnor.overhead_energy().value() * 20.0 < ehtr.overhead_energy().value());
}

#[test]
fn runtime_ordering_matches_complexity() {
    let [_, inor, ehtr, baseline] = run_all(60, 30, 17);
    // EHTR's DP is asymptotically (and practically) slower than INOR.
    assert!(
        ehtr.runtime().total().value() > inor.runtime().total().value(),
        "EHTR total runtime {} should exceed INOR {}",
        ehtr.runtime().total(),
        inor.runtime().total()
    );
    // The baseline does no work at all.
    assert_eq!(baseline.average_runtime().value(), 0.0);
}

#[test]
fn reports_are_internally_consistent() {
    let [dnor, inor, ehtr, baseline] = run_all(25, 45, 3);
    for report in [&dnor, &inor, &ehtr, &baseline] {
        assert_eq!(report.records().len(), 45);
        assert!(report.net_energy() <= report.gross_energy());
        assert!(report.net_energy().value() <= report.ideal_energy().value() + 1e-6);
        assert!(report.ideal_fraction() > 0.0 && report.ideal_fraction() <= 1.0);
        assert_eq!(report.switch_times().len(), report.switch_count());
        // Gross minus net equals the overhead actually charged (up to the
        // clamping that prevents negative per-step power).
        let diff = report.gross_energy().value() - report.net_energy().value();
        assert!(diff <= report.overhead_energy().value() + 1e-6);
    }
}

#[test]
fn results_scale_with_the_gradient_seed() {
    // Different drive-cycle seeds change absolute numbers but not the
    // qualitative ordering.
    for seed in [1u64, 7, 23] {
        let [dnor, _inor, _ehtr, baseline] = run_all(30, 40, seed);
        assert!(
            dnor.net_energy().value() > baseline.net_energy().value(),
            "seed {seed}: DNOR {} vs baseline {}",
            dnor.net_energy(),
            baseline.net_energy()
        );
    }
}
