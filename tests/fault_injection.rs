//! End-to-end fault-injection tests: the "Table I under degradation" story
//! across the whole stack — scenario fault plans, the degraded electrical
//! solve, sensor corruption, per-scheme fault accounting and the comparison
//! artefacts built on top.

use teg_harvest::array::{ModuleFault, SwitchStuck};
use teg_harvest::reconfig::SchemeSpec;
use teg_harvest::sim::{
    Comparison, FaultAction, FaultEvent, FaultPlan, FaultSeverity, RuntimePolicy, Scenario,
    SimSession,
};
use teg_harvest::units::Seconds;

const CHARGE: Seconds = Seconds::new(0.002);

fn scenario_with(plan: FaultPlan, modules: usize, seconds: usize) -> Scenario {
    Scenario::builder()
        .module_count(modules)
        .duration_seconds(seconds)
        .seed(17)
        .fault_plan(plan)
        .build()
        .expect("scenario")
}

#[test]
fn every_scheme_survives_a_degraded_drive_and_loses_energy_to_it() {
    let plan = FaultPlan::random(16, 60, FaultSeverity::moderate(), 17);
    assert!(!plan.is_empty());
    let healthy = scenario_with(FaultPlan::none(), 16, 60);
    let degraded = scenario_with(plan, 16, 60);

    let run = |scenario: &Scenario| {
        Comparison::from_specs(scenario, &SchemeSpec::paper_field_fixed(16, CHARGE))
            .runtime_policy(RuntimePolicy::Fixed(CHARGE))
            .run()
            .expect("comparison")
    };
    let healthy_report = run(&healthy);
    let degraded_report = run(&degraded);

    for scheme in ["DNOR", "INOR", "EHTR", "Baseline"] {
        let h = healthy_report.report(scheme).expect("ran healthy");
        let d = degraded_report.report(scheme).expect("ran degraded");
        // All 60 steps complete despite open/short/stuck/sensor faults…
        assert_eq!(d.records().len(), 60);
        // …the degradation costs real energy…
        assert!(
            d.net_energy() < h.net_energy(),
            "{scheme} must lose energy under faults"
        );
        assert!(
            d.net_energy().value() > 0.0,
            "{scheme} must keep harvesting"
        );
        // …and the fault exposure is accounted per scheme.
        assert!(d.runtime().faulted_invocations() > 0);
        assert_eq!(h.runtime().faulted_invocations(), 0);
        assert!(d.runtime().fault_share() > 0.0);
    }
    // The degraded table still renders (the bench bin's report path).
    let table = degraded_report.table1();
    assert!(table.contains("DNOR"), "{table}");
}

#[test]
fn parallel_groups_ride_through_a_dead_module_that_breaks_a_series_string() {
    // A module open-circuits early in a 9-module array.  The square-grid
    // baseline (3 parallel groups of 3) keeps delivering through the two
    // surviving neighbours; a fault-blind reconfigurer that ever isolates
    // the dead module into its own group breaks the whole series string —
    // the failure mode the paper's motivation describes.
    let plan = || {
        FaultPlan::new(vec![FaultEvent::new(
            5,
            FaultAction::Module {
                module: 3,
                fault: ModuleFault::OpenCircuit,
            },
        )])
    };

    let scenario = scenario_with(plan(), 9, 30);
    let mut baseline = teg_harvest::reconfig::StaticBaseline::square_grid(9);
    let mut session = SimSession::new(&scenario, &mut baseline).expect("session");
    let mut powers = Vec::new();
    while let Some(record) = session.step().expect("step") {
        powers.push(record.array_power().value());
    }
    let summary = session.summary();
    assert_eq!(summary.faulted_steps(), 25);
    assert_eq!(summary.fault_events(), 1);
    // The parallel group absorbs the hole: power stays positive throughout.
    assert!(powers[5..].iter().all(|&p| p > 0.0));
    assert!(summary.net_energy().value() > 0.0);

    // INOR cannot see the electrical fault through its (healthy) telemetry;
    // on this near-uniform array it wires the dead module into a tiny
    // group and the string goes dead — strictly worse than never touching
    // the wiring.  This is the blindness the fault axis exists to expose.
    let scenario = scenario_with(plan(), 9, 30);
    let mut inor = teg_harvest::reconfig::Inor::default();
    let mut session = SimSession::new(&scenario, &mut inor).expect("session");
    let mut inor_powers = Vec::new();
    while let Some(record) = session.step().expect("step") {
        inor_powers.push(record.array_power().value());
    }
    let inor_summary = session.summary();
    assert!(
        inor_powers[5..].contains(&0.0),
        "fault-blind INOR should break the string on this array"
    );
    assert!(inor_summary.net_energy() < summary.net_energy());
}

#[test]
fn stuck_switches_bound_what_the_controller_can_realise() {
    // Weld every link shut: whatever the scheme commands, the fabric can
    // only realise the all-parallel wiring, so all schemes deliver exactly
    // the same energy.
    let weld_all = |n: usize| {
        FaultPlan::new(
            (0..n - 1)
                .map(|link| {
                    FaultEvent::new(
                        0,
                        FaultAction::Switch {
                            link,
                            stuck: SwitchStuck::Closed,
                        },
                    )
                })
                .collect(),
        )
    };
    let scenario = scenario_with(weld_all(8), 8, 20);
    let report = Comparison::from_specs(&scenario, &SchemeSpec::paper_field_fixed(8, CHARGE))
        .runtime_policy(RuntimePolicy::Fixed(CHARGE))
        .run()
        .expect("comparison");
    let energies: Vec<f64> = report
        .reports()
        .iter()
        .map(|r| r.gross_energy().value())
        .collect();
    for pair in energies.windows(2) {
        assert!(
            (pair[0] - pair[1]).abs() < 1e-9,
            "welded fabric must equalise all schemes' gross output: {energies:?}"
        );
    }
}

#[test]
fn fault_plans_serialise_into_session_artefacts() {
    let plan = FaultPlan::random(12, 50, FaultSeverity::light(), 3);
    let scenario = scenario_with(plan.clone(), 12, 50);
    // The scenario exposes the plan for session records / CSV captions…
    assert_eq!(scenario.fault_plan(), &plan);
    let spec = scenario.fault_plan().spec();
    if !plan.is_empty() {
        assert!(spec.contains(':'), "{spec}");
    }
    // …and the spec is stable across identical generations (the substance
    // of "seeded, deterministic, serializable").
    let again = FaultPlan::random(12, 50, FaultSeverity::light(), 3);
    assert_eq!(spec, again.spec());
}
