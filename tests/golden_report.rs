//! Golden-trace regression harness.
//!
//! The headline report artefacts — Table I for the `paper_field` lineup
//! (healthy and degraded) and a sweep summary over a grid with a fault axis
//! — are regenerated under the bit-reproducible configuration
//! (`RuntimePolicy::Fixed` + `SchemeLineup::paper_fixed`, which gives DNOR a
//! fixed assumed computation time) and compared byte-for-byte against
//! snapshots committed under `tests/golden/`.
//!
//! Any drift in the physics, the schemes, the fault model or the report
//! formatting fails these tests.  After an *intended* change, re-bless the
//! snapshots with:
//!
//! ```sh
//! TEG_BLESS=1 cargo test --test golden_report
//! ```
//!
//! and commit the regenerated files (see TESTING.md for the determinism
//! contract this relies on).

use std::fs;
use std::path::PathBuf;

use teg_harvest::reconfig::SchemeSpec;
use teg_harvest::sim::{
    Comparison, FaultPlan, FaultProfile, FaultSeverity, RuntimePolicy, Scenario, ScenarioGrid,
    SchemeLineup, SweepRunner,
};
use teg_harvest::units::Seconds;

/// The fixed per-decision computation charge every deterministic artefact
/// uses (DNOR's assumed runtime and the session policy must agree).
const FIXED_CHARGE: Seconds = Seconds::new(0.002);

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Compares `actual` against the committed snapshot, or rewrites the
/// snapshot when `TEG_BLESS=1` is set.
fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("TEG_BLESS").is_some_and(|v| v == "1") {
        fs::create_dir_all(golden_dir()).expect("create tests/golden");
        fs::write(&path, actual).unwrap_or_else(|e| panic!("bless {}: {e}", path.display()));
        eprintln!("blessed {}", path.display());
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); generate it with TEG_BLESS=1 cargo test \
             --test golden_report",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name} drifted from its golden snapshot; if the change is intended, re-bless with \
         TEG_BLESS=1 cargo test --test golden_report"
    );
}

fn paper_field_table1(plan: FaultPlan) -> String {
    let scenario = Scenario::builder()
        .module_count(20)
        .duration_seconds(120)
        .seed(2024)
        .fault_plan(plan.clone())
        .build()
        .expect("scenario");
    let specs = SchemeSpec::paper_field_fixed(20, FIXED_CHARGE);
    let report = Comparison::from_specs(&scenario, &specs)
        .runtime_policy(RuntimePolicy::Fixed(FIXED_CHARGE))
        .run()
        .expect("comparison");
    format!(
        "# paper_field lineup, 20 modules, 120 s drive, seed 2024, fixed 2 ms charge\n\
         # fault plan: {plan}\n{}",
        report.table1()
    )
}

#[test]
fn table1_healthy_reproduces_bit_identically() {
    assert_matches_golden("table1_healthy.txt", &paper_field_table1(FaultPlan::none()));
}

#[test]
fn table1_degraded_reproduces_bit_identically() {
    let plan = FaultPlan::random(20, 120, FaultSeverity::moderate(), 2024);
    assert!(
        !plan.is_empty(),
        "the degraded snapshot must contain faults"
    );
    assert_matches_golden("table1_degraded.txt", &paper_field_table1(plan));
}

#[test]
fn sweep_summary_reproduces_bit_identically_for_any_worker_count() {
    let grid = || {
        ScenarioGrid::builder()
            .module_counts([10, 14])
            .seeds([1, 2])
            .duration_seconds(40)
            .faults([
                FaultProfile::none(),
                FaultProfile::random("moderate", FaultSeverity::moderate()),
            ])
            .lineups([SchemeLineup::paper_fixed(FIXED_CHARGE)])
            .build()
            .expect("grid")
    };
    let run = |workers: usize| {
        SweepRunner::new()
            .workers(workers)
            .runtime_policy(RuntimePolicy::Fixed(FIXED_CHARGE))
            .run(&grid())
            .expect("sweep")
    };
    let serial = run(1);
    let parallel = run(4);
    // The golden file also certifies worker-count independence: both runs
    // must match the identical snapshot.
    assert_eq!(serial, parallel);
    let rendered = format!(
        "# paper-fixed lineup sweep: 2 module counts x 2 seeds x (healthy, moderate faults), \
         40 s drives, fixed 2 ms charge\n{}",
        parallel.summary_table()
    );
    assert_matches_golden("sweep_summary.txt", &rendered);
}
