//! Switching-overhead accounting across the whole stack: the Section III-C
//! model, the engine's bookkeeping and the DNOR switch decision.

use teg_harvest::array::{Configuration, SwitchingOverheadModel};
use teg_harvest::reconfig::{Dnor, DnorConfig, Inor, InorConfig};
use teg_harvest::sim::{Scenario, SimulationEngine};
use teg_harvest::units::{Joules, Seconds, Watts};

#[test]
fn overhead_model_charges_more_for_bigger_reconfigurations() {
    let model = SwitchingOverheadModel::default();
    let small = Configuration::uniform(60, 6).unwrap();
    let nearby = Configuration::new(
        {
            let mut starts: Vec<usize> = small.group_starts().to_vec();
            starts[3] += 1;
            starts
        },
        60,
    )
    .unwrap();
    let distant = Configuration::uniform(60, 12).unwrap();

    let few_toggles = small.switch_toggles_to(&nearby).unwrap();
    let many_toggles = small.switch_toggles_to(&distant).unwrap();
    assert!(few_toggles < many_toggles);

    let power = Watts::new(60.0);
    let compute = Seconds::new(0.003);
    let cheap = model.event(power, compute, few_toggles).total_energy();
    let expensive = model.event(power, compute, many_toggles).total_energy();
    assert!(cheap < expensive);
}

#[test]
fn engine_charges_overhead_only_when_something_happens() {
    let scenario = Scenario::builder()
        .module_count(20)
        .duration_seconds(30)
        .seed(77)
        .build()
        .unwrap();
    let engine = SimulationEngine::new(scenario);
    let report = engine.run(&mut Inor::default()).unwrap();
    // INOR evaluates twice per second, so every step carries at least the
    // evaluation-only overhead.
    assert!(report
        .records()
        .iter()
        .all(|r| r.overhead_energy().value() > 0.0));
    // Steps that switched cost more than steps that only evaluated.
    let switched: Vec<f64> = report
        .records()
        .iter()
        .filter(|r| r.switched())
        .map(|r| r.overhead_energy().value())
        .collect();
    let unswitched: Vec<f64> = report
        .records()
        .iter()
        .filter(|r| !r.switched())
        .map(|r| r.overhead_energy().value())
        .collect();
    if !switched.is_empty() && !unswitched.is_empty() {
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&switched) > avg(&unswitched));
    }
}

#[test]
fn inflated_overhead_makes_dnor_refuse_to_switch() {
    // With an absurdly expensive switch, DNOR should stay on its initial
    // wiring for the whole run.
    let huge = SwitchingOverheadModel::new(
        Seconds::new(0.004),
        Seconds::new(0.008),
        Seconds::new(0.006),
        Joules::new(1.0e6),
    );
    let config = DnorConfig::new(InorConfig::default(), 2, 5, huge, Seconds::new(1.0)).unwrap();
    let scenario = Scenario::builder()
        .module_count(20)
        .duration_seconds(40)
        .seed(13)
        .build()
        .unwrap();
    let engine = SimulationEngine::new(scenario);
    let report = engine.run(&mut Dnor::new(config)).unwrap();
    assert_eq!(
        report.switch_count(),
        0,
        "an infinite switch cost must freeze DNOR"
    );

    // With the normal overhead model it does reconfigure at least once.
    let report = engine.run(&mut Dnor::default()).unwrap();
    assert!(report.switch_count() >= 1);
}

#[test]
fn zero_overhead_collapses_dnor_towards_inor_behaviour() {
    let zero =
        SwitchingOverheadModel::new(Seconds::ZERO, Seconds::ZERO, Seconds::ZERO, Joules::ZERO);
    let scenario = Scenario::builder()
        .module_count(20)
        .duration_seconds(40)
        .seed(21)
        .overhead(zero)
        .build()
        .unwrap();
    let engine = SimulationEngine::new(scenario);
    let dnor_cfg = DnorConfig::new(InorConfig::default(), 2, 5, zero, Seconds::new(1.0)).unwrap();
    let dnor = engine.run(&mut Dnor::new(dnor_cfg)).unwrap();
    let inor = engine.run(&mut Inor::default()).unwrap();
    // With no switching penalty at all, both schemes harvest essentially the
    // same energy.
    let ratio = dnor.net_energy().value() / inor.net_energy().value();
    assert!((0.97..=1.03).contains(&ratio), "ratio {ratio}");
    // The only residual overhead is the measured algorithm computation time
    // (microseconds) multiplied by the array power — a few millijoules.
    assert!(dnor.overhead_energy().value() < 0.5);
    assert!(inor.overhead_energy().value() < 0.5);
}
