//! The prediction pipeline on realistic drive-cycle data: the Fig. 5
//! experiment in miniature.

use teg_harvest::predict::metrics::{mae, mape, rmse};
use teg_harvest::predict::{
    BackPropagationNetwork, MultipleLinearRegression, Predictor, SupportVectorRegression,
};
use teg_harvest::thermal::{DriveCycle, Radiator, RadiatorGeometry, SShapedPlacement};

/// One-step-ahead MAPE of a fitted predictor over the tail of a series.
fn one_step_mape(predictor: &mut dyn Predictor, values: &[f64], split: usize) -> f64 {
    predictor.fit(&values[..split]).expect("fit");
    let mut actual = Vec::new();
    let mut forecast = Vec::new();
    for t in split..values.len() {
        forecast.push(predictor.predict_next(&values[..t]).expect("prediction"));
        actual.push(values[t]);
    }
    mape(&actual, &forecast).expect("mape")
}

#[test]
fn all_predictors_track_the_coolant_temperature_well() {
    let cycle = DriveCycle::porter_ii_800s(3).expect("drive cycle");
    let series = cycle.coolant_temperature_series();
    let values = series.values();
    let split = 500;

    let mlr = one_step_mape(
        &mut MultipleLinearRegression::new(5).unwrap(),
        values,
        split,
    );
    let bpnn = one_step_mape(
        &mut BackPropagationNetwork::new(5, 8, 11).unwrap(),
        values,
        split,
    );
    let svr = one_step_mape(
        &mut SupportVectorRegression::new(5, 11).unwrap(),
        values,
        split,
    );

    // The paper's Fig. 5 shows sub-percent errors; the synthetic cycle is
    // noisier per-sample but all three methods must stay below 2 %.
    assert!(mlr < 2.0, "MLR MAPE {mlr}%");
    assert!(bpnn < 2.0, "BPNN MAPE {bpnn}%");
    assert!(svr < 2.0, "SVR MAPE {svr}%");

    // And MLR is the best (or tied within rounding), matching the paper's
    // choice of predictor for DNOR.
    assert!(
        mlr <= bpnn + 0.05,
        "MLR ({mlr}) should not lose clearly to BPNN ({bpnn})"
    );
    assert!(
        mlr <= svr + 0.05,
        "MLR ({mlr}) should not lose clearly to SVR ({svr})"
    );
}

#[test]
fn per_module_temperatures_are_equally_predictable() {
    // Predicting the derived per-module temperature (what DNOR actually
    // does) is as easy as predicting the inlet temperature.
    let cycle = DriveCycle::porter_ii_800s(9).expect("drive cycle");
    let radiator = Radiator::new(RadiatorGeometry::porter_ii());
    let placement = SShapedPlacement::new(10).expect("placement");
    let mut module3 = Vec::new();
    for sample in cycle.iter() {
        let profile = radiator
            .surface_profile(&sample.coolant(), &sample.ambient())
            .expect("profile");
        let temps = profile.sample(&placement);
        module3.push(temps[3].value());
    }
    let err = one_step_mape(
        &mut MultipleLinearRegression::new(5).unwrap(),
        &module3,
        500,
    );
    assert!(err < 1.0, "per-module MLR MAPE {err}%");
}

#[test]
fn error_metrics_agree_on_relative_quality() {
    let cycle = DriveCycle::porter_ii_800s(21).expect("drive cycle");
    let series = cycle.coolant_temperature_series();
    let values = series.values();
    let split = 600;

    let mut mlr = MultipleLinearRegression::new(5).unwrap();
    mlr.fit(&values[..split]).unwrap();
    let mut actual = Vec::new();
    let mut good = Vec::new();
    let mut bad = Vec::new();
    for t in split..values.len() {
        actual.push(values[t]);
        good.push(mlr.predict_next(&values[..t]).unwrap());
        // A deliberately poor "forecast": yesterday's value minus a bias.
        bad.push(values[t - 1] - 2.0);
    }
    assert!(mape(&actual, &good).unwrap() < mape(&actual, &bad).unwrap());
    assert!(rmse(&actual, &good).unwrap() < rmse(&actual, &bad).unwrap());
    assert!(mae(&actual, &good).unwrap() < mae(&actual, &bad).unwrap());
}
