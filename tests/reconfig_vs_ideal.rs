//! INOR's output against the physical upper bound `P_ideal`, across array
//! sizes and temperature profiles.

use teg_harvest::array::{ideal_power, Configuration, TegArray};
use teg_harvest::device::{TegDatasheet, TegModule, VariationModel};
use teg_harvest::reconfig::Inor;
use teg_harvest::units::TemperatureDelta;

fn array(n: usize) -> TegArray {
    TegArray::uniform(
        TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8()),
        n,
    )
}

fn exponential_profile(n: usize, hot: f64, decay: f64) -> Vec<TemperatureDelta> {
    (0..n)
        .map(|i| TemperatureDelta::new(hot * (-(i as f64) * decay / n as f64).exp()))
        .collect()
}

#[test]
fn inor_captures_most_of_the_ideal_power_across_sizes() {
    let inor = Inor::default();
    for &n in &[10usize, 25, 50, 100, 200] {
        let a = array(n);
        let deltas = exponential_profile(n, 70.0, 1.2);
        let (_, power) = inor.optimise(&a, &deltas).expect("INOR optimisation");
        let ideal = ideal_power(a.modules(), &deltas).expect("ideal power");
        let fraction = power.value() / ideal.value();
        assert!(
            fraction > 0.88 && fraction <= 1.0 + 1e-9,
            "N={n}: INOR captured only {fraction:.3} of ideal"
        );
    }
}

#[test]
fn inor_advantage_grows_with_the_gradient_steepness() {
    let inor = Inor::default();
    let n = 100;
    let a = array(n);
    let mut last_gain = 0.0;
    for &decay in &[0.2_f64, 0.8, 1.6, 2.4] {
        let deltas = exponential_profile(n, 75.0, decay);
        let (_, inor_power) = inor.optimise(&a, &deltas).unwrap();
        let grid = Configuration::uniform(n, 10).unwrap();
        let grid_power = a.mpp_power(&grid, &deltas).unwrap();
        let gain = inor_power.value() / grid_power.value();
        assert!(gain >= 1.0 - 1e-9, "INOR must never lose to the fixed grid");
        assert!(
            gain + 1e-6 >= last_gain,
            "gain should not shrink as the gradient steepens (decay {decay}: {gain:.4} vs {last_gain:.4})"
        );
        last_gain = gain;
    }
    assert!(
        last_gain > 1.02,
        "steep gradients should show a clear INOR advantage, got {last_gain:.4}"
    );
}

#[test]
fn module_variation_does_not_break_near_optimality() {
    let nominal = TegModule::from_datasheet(&TegDatasheet::tgm_199_1_4_0_8());
    let modules = VariationModel::new(0.05, 0.08)
        .expect("valid tolerances")
        .apply(&nominal, 60, 123)
        .expect("variation");
    let a = TegArray::new(modules).expect("array");
    let deltas = exponential_profile(60, 65.0, 1.0);
    let (config, power) = Inor::default().optimise(&a, &deltas).unwrap();
    let ideal = ideal_power(a.modules(), &deltas).unwrap();
    assert!(power.value() / ideal.value() > 0.85);
    assert_eq!(config.module_count(), 60);
}

#[test]
fn flat_profiles_make_every_scheme_equivalent() {
    let n = 50;
    let a = array(n);
    let deltas = vec![TemperatureDelta::new(55.0); n];
    let (_, inor_power) = Inor::default().optimise(&a, &deltas).unwrap();
    let grid_power = a
        .mpp_power(&Configuration::uniform(n, 10).unwrap(), &deltas)
        .unwrap();
    let ideal = ideal_power(a.modules(), &deltas).unwrap();
    assert!((inor_power.value() - ideal.value()).abs() < 1e-6);
    assert!((grid_power.value() - ideal.value()).abs() < 1e-6);
}
