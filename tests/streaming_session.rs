//! Integration tests of the streaming session API: lockstep comparison
//! equivalence with sequential engine runs, the shared-thermal-trace solve
//! count, and the long-period invocation regression.

use teg_harvest::reconfig::{Dnor, Ehtr, Inor, InorConfig, Reconfigurer, StaticBaseline};
use teg_harvest::sim::{Comparison, Scenario, SimSession, SimulationEngine};
use teg_harvest::units::Seconds;

fn scenario(modules: usize, seconds: usize, seed: u64) -> Scenario {
    Scenario::builder()
        .module_count(modules)
        .duration_seconds(seconds)
        .seed(seed)
        .build()
        .expect("valid scenario")
}

#[test]
fn comparison_matches_four_sequential_engine_runs() {
    let modules = 24;
    let s = scenario(modules, 50, 11);

    let lockstep = Comparison::new(&s)
        .scheme(Dnor::default())
        .scheme(Inor::default())
        .scheme(Ehtr::default())
        .scheme(StaticBaseline::square_grid(modules))
        .run()
        .expect("comparison");

    let engine = SimulationEngine::new(s.clone());
    let sequential = [
        engine.run(&mut Dnor::default()).expect("DNOR"),
        engine.run(&mut Inor::default()).expect("INOR"),
        engine.run(&mut Ehtr::default()).expect("EHTR"),
        engine
            .run(&mut StaticBaseline::square_grid(modules))
            .expect("baseline"),
    ];

    for report in &sequential {
        let lock = lockstep
            .report(report.scheme())
            .expect("scheme ran in lockstep");
        // The physics and the decisions are deterministic, so everything
        // derived from them is identical between the lockstep comparison and
        // a classic sequential run.
        assert_eq!(lock.records().len(), report.records().len());
        assert_eq!(
            lock.switch_count(),
            report.switch_count(),
            "{}",
            report.scheme()
        );
        assert_eq!(
            lock.gross_energy(),
            report.gross_energy(),
            "{}",
            report.scheme()
        );
        assert_eq!(
            lock.ideal_energy(),
            report.ideal_energy(),
            "{}",
            report.scheme()
        );
        assert_eq!(
            lock.power_trace(),
            report.power_trace(),
            "{}",
            report.scheme()
        );
        assert_eq!(
            lock.switch_times(),
            report.switch_times(),
            "{}",
            report.scheme()
        );
        // Net energy differs only by the wall-clock computation time folded
        // into the overhead model (timing jitter), never by physics.
        let diff = (lock.net_energy().value() - report.net_energy().value()).abs();
        assert!(
            diff < 1.0,
            "{}: net energy differs by {diff} J",
            report.scheme()
        );
    }
}

#[test]
fn comparison_solves_the_thermal_model_once_per_sample() {
    let s = scenario(16, 40, 7);
    assert_eq!(s.thermal_solve_count(), 0);
    let report = Comparison::paper_schemes(&s).run().expect("comparison");
    assert_eq!(report.reports().len(), 4);
    // Four schemes over a 40-sample cycle: exactly 40 radiator solves, not
    // 160 — the acceptance criterion of the streaming redesign.
    assert_eq!(s.thermal_solve_count(), 40);
    // Sequential engine runs over the same scenario reuse the cached trace.
    let engine = SimulationEngine::new(s.clone());
    engine.run(&mut Inor::default()).expect("INOR");
    assert_eq!(s.thermal_solve_count(), 40);
}

#[test]
fn long_period_schemes_are_invoked_at_their_period() {
    // Regression test for the pre-session engine, which clamped
    // `invocations_per_step` to at least one per step and therefore invoked
    // a 4-second-period scheme four times too often.
    let s = scenario(10, 40, 5);
    let config = InorConfig::new(*s.charger(), 0.9, Seconds::new(4.0)).expect("config");
    let report = SimulationEngine::new(s)
        .run(&mut Inor::new(config))
        .expect("run");
    // One invocation at t = 0 plus one every 4 s: 10 over 40 seconds.
    assert_eq!(report.runtime().invocations(), 10);
    // The sub-second default period still invokes twice per second.
    let s = scenario(10, 40, 5);
    let report = SimulationEngine::new(s)
        .run(&mut Inor::default())
        .expect("run");
    assert_eq!(report.runtime().invocations(), 80);
}

#[test]
fn session_streaming_matches_engine_report() {
    let s = scenario(18, 35, 13);
    let mut streamed = Vec::new();
    let mut dnor = Dnor::default();
    let mut session = SimSession::new(&s, &mut dnor).expect("session");
    while let Some(record) = session.step().expect("step") {
        streamed.push(record);
    }
    let summary = session.summary();
    drop(session);

    let report = SimulationEngine::new(s)
        .run(&mut Dnor::default())
        .expect("run");
    assert_eq!(streamed.len(), report.records().len());
    assert_eq!(summary.switch_count(), report.switch_count());
    assert_eq!(summary.gross_energy(), report.gross_energy());
    for (streamed, reported) in streamed.iter().zip(report.records()) {
        assert_eq!(streamed.time(), reported.time());
        assert_eq!(streamed.array_power(), reported.array_power());
        assert_eq!(streamed.group_count(), reported.group_count());
        assert_eq!(streamed.switched(), reported.switched());
    }
}

#[test]
fn bounded_telemetry_does_not_change_scheme_quality() {
    // The windowed history must preserve the paper's qualitative ordering:
    // DNOR still beats the baseline and still switches rarely.
    let s = scenario(30, 60, 21);
    let report = Comparison::paper_schemes(&s).run().expect("comparison");
    let dnor = report.report("DNOR").expect("ran");
    let inor = report.report("INOR").expect("ran");
    let baseline = report.report("Baseline").expect("ran");
    assert!(dnor.net_energy().value() > baseline.net_energy().value());
    assert!(dnor.overhead_energy().value() < 0.25 * inor.overhead_energy().value());
    assert!(dnor.net_energy().value() >= 0.98 * inor.net_energy().value());
    // And the DNOR lookback really is bounded.
    assert!(Reconfigurer::lookback(&Dnor::default()) < 60);
}
