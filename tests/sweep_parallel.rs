//! Integration tests of the parallel scenario-sweep subsystem: the
//! serial/parallel equivalence guarantee, the one-solve-per-sample cache
//! invariant for any worker count, and the deterministic grid ordering.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use teg_harvest::array::Configuration;
use teg_harvest::reconfig::{
    ReconfigDecision, ReconfigError, Reconfigurer, SchemeSpec, TelemetryWindow,
};
use teg_harvest::sim::{
    DriveProfile, FaultProfile, FaultSeverity, RuntimePolicy, ScenarioGrid, SchemeLineup,
    SweepRunner,
};
use teg_harvest::units::Seconds;

/// A 12-cell grid: 2 module counts × 3 seeds × 1 drive, each sample replayed
/// by two lineups (so 6 distinct scenario samples feed 12 cells).
///
/// The lineups use only schemes whose decisions are pure functions of the
/// telemetry (INOR, EHTR, the baseline), so with a fixed runtime charge the
/// whole sweep is bit-reproducible.
fn grid() -> ScenarioGrid {
    ScenarioGrid::builder()
        .module_counts([6, 9])
        .seeds([1, 2, 3])
        .drives([DriveProfile::named("short", 20)])
        .lineups([
            SchemeLineup::parameterised("inor-vs-baseline", |n| {
                vec![SchemeSpec::inor(), SchemeSpec::baseline_square_grid(n)]
            }),
            SchemeLineup::fixed("heuristics", vec![SchemeSpec::inor(), SchemeSpec::ehtr()]),
        ])
        .build()
        .expect("valid grid")
}

const POLICY_CHARGE: Seconds = Seconds::new(0.002);
const POLICY: RuntimePolicy = RuntimePolicy::Fixed(POLICY_CHARGE);

#[test]
fn one_worker_and_four_workers_produce_identical_reports() {
    // Two *fresh* grids so each run pays (and proves) its own solves.
    let serial_grid = grid();
    let parallel_grid = grid();
    assert_eq!(serial_grid.len(), 12);

    let serial = SweepRunner::new()
        .workers(1)
        .runtime_policy(POLICY)
        .run(&serial_grid)
        .expect("serial sweep");
    let parallel = SweepRunner::new()
        .workers(4)
        .runtime_policy(POLICY)
        .run(&parallel_grid)
        .expect("parallel sweep");

    // The headline guarantee: identical reports — per-cell records,
    // energies, runtime statistics, summaries, solve counts — regardless of
    // how the pool interleaved the cells.
    assert_eq!(serial, parallel);
}

#[test]
fn thermal_solves_are_one_per_sample_regardless_of_worker_count() {
    for workers in [1, 4] {
        let g = grid();
        // 6 distinct samples × 20 drive seconds; the 12 cells (two lineups
        // per sample, possibly on different workers) share the solves.
        // Every sample here has distinct thermal inputs (module count ×
        // seed), so the cross-sample cache cannot reduce further.
        let report = SweepRunner::new()
            .workers(workers)
            .runtime_policy(POLICY)
            .run(&g)
            .expect("sweep");
        assert_eq!(g.expected_thermal_solves(), 6 * 20);
        assert_eq!(
            report.thermal_solves(),
            g.expected_thermal_solves(),
            "trace cache failed with {workers} workers"
        );
        assert_eq!(g.thermal_solve_count(), g.expected_thermal_solves());
    }
}

#[test]
fn fault_axes_reduce_thermal_solves_to_unique_keys() {
    // Three fault profiles over the same (module count, seed, drive)
    // coordinates triple the samples but leave the radiator inputs
    // untouched, so the shared trace cache must collapse the solves back to
    // one per unique key — for any worker count.
    let grid = |shared: bool| {
        let builder = ScenarioGrid::builder()
            .module_counts([6, 9])
            .seeds([1, 2])
            .drives([DriveProfile::named("short", 20)])
            .faults([
                FaultProfile::none(),
                FaultProfile::random("light", FaultSeverity::light()),
                FaultProfile::random("severe", FaultSeverity::severe()),
            ])
            .lineups([SchemeLineup::paper_fixed(POLICY_CHARGE)]);
        let builder = if shared {
            builder
        } else {
            builder.isolated_traces()
        };
        builder.build().expect("valid grid")
    };
    for workers in [1, 4] {
        let g = grid(true);
        assert_eq!(g.samples().len(), 12);
        // 12 samples, 4 unique thermal keys: a 3x reduction.
        assert_eq!(g.expected_thermal_solves(), 4 * 20);
        let report = SweepRunner::new()
            .workers(workers)
            .runtime_policy(POLICY)
            .run(&g)
            .expect("sweep");
        assert_eq!(
            report.thermal_solves(),
            4 * 20,
            "unique-key sharing failed with {workers} workers"
        );
        let cache = g.trace_cache().expect("grids share traces by default");
        assert_eq!(cache.len(), 4);
        assert_eq!(cache.misses(), 4);
        // The pre-solve planner took the 4 misses before any cell ran, so
        // all 12 cell lookups land as hits (planner-off demand solving
        // would split them 4 misses / 8 hits).
        assert_eq!(cache.hits(), 12);
    }
    // The isolated grid pays the historical one-solve-per-sample cost and
    // still produces the identical report.
    let shared_report = SweepRunner::new()
        .workers(4)
        .runtime_policy(POLICY)
        .run(&grid(true))
        .expect("shared sweep");
    let isolated = grid(false);
    assert_eq!(isolated.expected_thermal_solves(), 12 * 20);
    let isolated_report = SweepRunner::new()
        .workers(4)
        .runtime_policy(POLICY)
        .run(&isolated)
        .expect("isolated sweep");
    assert_eq!(isolated_report.thermal_solves(), 12 * 20);
    assert_eq!(shared_report.cells(), isolated_report.cells());
    assert_eq!(shared_report.summaries(), isolated_report.summaries());
}

#[test]
fn cells_are_reported_in_grid_order_with_full_coordinates() {
    let g = grid();
    let report = SweepRunner::new()
        .workers(4)
        .runtime_policy(POLICY)
        .run(&g)
        .expect("sweep");

    assert_eq!(report.cells().len(), 12);
    for (i, cell) in report.cells().iter().enumerate() {
        assert_eq!(cell.key().index(), i);
        assert_eq!(cell.key().drive(), "short");
        // Every cell carries its lineup's full field.
        assert_eq!(cell.report().reports().len(), 2);
    }
    // Lineups alternate fastest; module counts slowest.
    assert_eq!(report.cells()[0].key().lineup(), "inor-vs-baseline");
    assert_eq!(report.cells()[1].key().lineup(), "heuristics");
    assert_eq!(report.cells()[0].key().module_count(), 6);
    assert_eq!(report.cells()[11].key().module_count(), 9);

    // INOR ran in all 12 cells, the baseline and EHTR in 6 each.
    assert_eq!(report.summary("INOR").expect("ran").cells(), 12);
    assert_eq!(report.summary("Baseline").expect("ran").cells(), 6);
    assert_eq!(report.summary("EHTR").expect("ran").cells(), 6);
}

#[test]
fn faulted_grids_keep_the_serial_parallel_equivalence() {
    // The acceptance grid: a fault axis (healthy + two degraded profiles)
    // crossed with the bit-reproducible paper lineup.  Module, switch and
    // sensor faults all fire mid-drive, and one worker must still equal
    // four workers bit-for-bit.
    let grid = || {
        ScenarioGrid::builder()
            .module_counts([8, 12])
            .seeds([3, 4])
            .drives([DriveProfile::named("degraded-short", 25)])
            .faults([
                FaultProfile::none(),
                FaultProfile::random("light", FaultSeverity::light()),
                FaultProfile::random("severe", FaultSeverity::severe()),
            ])
            .lineups([SchemeLineup::paper_fixed(POLICY_CHARGE)])
            .build()
            .expect("valid faulted grid")
    };
    let run = |workers: usize| {
        SweepRunner::new()
            .workers(workers)
            .runtime_policy(POLICY)
            .run(&grid())
            .expect("faulted sweep")
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial, parallel);

    // The grid really contains degraded cells, and they really degrade:
    // every severe cell harvests less than its healthy sibling.
    assert_eq!(parallel.cells().len(), 12);
    let g = grid();
    assert!(g
        .cells()
        .iter()
        .any(|c| !g.scenario(c).fault_plan().is_empty()));
    for chunk in parallel.cells().chunks(3) {
        let (healthy, severe) = (&chunk[0], &chunk[2]);
        assert_eq!(healthy.key().fault(), "healthy");
        assert_eq!(severe.key().fault(), "severe");
        for scheme in ["DNOR", "INOR", "EHTR", "Baseline"] {
            let h = healthy.report().report(scheme).expect("ran");
            let s = severe.report().report(scheme).expect("ran");
            assert!(
                s.net_energy() < h.net_energy(),
                "{scheme} in {} must lose energy to severe faults",
                severe.key()
            );
            assert_eq!(h.runtime().faulted_invocations(), 0);
            assert!(s.runtime().faulted_invocations() > 0);
        }
    }
}

/// A trivial scheme that counts its decisions through a shared counter —
/// the completion probe for the panic-confinement test.
struct Counting(Arc<AtomicUsize>);

impl Reconfigurer for Counting {
    fn name(&self) -> &'static str {
        "Counting"
    }
    fn period(&self) -> Seconds {
        Seconds::new(1.0)
    }
    fn decide(
        &mut self,
        _window: &TelemetryWindow<'_>,
        current: &Configuration,
    ) -> Result<ReconfigDecision, ReconfigError> {
        self.0.fetch_add(1, Ordering::Relaxed);
        Ok(ReconfigDecision::new(
            current.clone(),
            Seconds::ZERO,
            false,
            false,
        ))
    }
}

/// Panics for 7-module arrays, behaves like a no-op everywhere else.
struct PanicsOnSeven;

impl Reconfigurer for PanicsOnSeven {
    fn name(&self) -> &'static str {
        "PanicsOnSeven"
    }
    fn period(&self) -> Seconds {
        Seconds::new(1.0)
    }
    fn decide(
        &mut self,
        window: &TelemetryWindow<'_>,
        current: &Configuration,
    ) -> Result<ReconfigDecision, ReconfigError> {
        assert_ne!(window.array().len(), 7, "scheme bug on 7-module arrays");
        Ok(ReconfigDecision::new(
            current.clone(),
            Seconds::ZERO,
            false,
            false,
        ))
    }
}

#[test]
fn a_panicking_cell_is_confined_while_every_other_cell_completes() {
    const STEPS: usize = 6;
    let counter = Arc::new(AtomicUsize::new(0));
    let probe = Arc::clone(&counter);
    let grid = ScenarioGrid::builder()
        .module_counts([6, 7])
        .seeds([1, 2])
        .duration_seconds(STEPS)
        .lineups([
            SchemeLineup::fixed(
                "counting",
                vec![SchemeSpec::new(move || Counting(Arc::clone(&probe)))],
            ),
            SchemeLineup::fixed("panicky", vec![SchemeSpec::new(|| PanicsOnSeven)]),
        ])
        .build()
        .expect("valid grid");
    assert_eq!(grid.len(), 8); // 4 samples × 2 lineups; 2 cells will panic

    let err = SweepRunner::new()
        .workers(3)
        .run(&grid)
        .expect_err("the 7-module panicky cells must fail the sweep");
    // The panic surfaces as the (lowest-indexed) failing cell's error…
    let message = err.to_string();
    assert!(message.contains("panicked"), "{message}");
    assert!(message.contains("7mod"), "{message}");
    assert!(message.contains("panicky"), "{message}");

    // …while every other cell ran to completion: the counting lineup saw
    // all four samples through every step.
    assert_eq!(
        counter.load(Ordering::Relaxed),
        4 * STEPS,
        "counting cells must complete despite the sibling panic"
    );
    // And every sample's thermal trace was solved in full — including the
    // 7-module samples whose panicky sibling died after the solve.
    assert_eq!(grid.thermal_solve_count(), 4 * STEPS);
}

#[test]
fn paper_lineup_sweeps_run_all_four_schemes() {
    // DNOR's switch economics consult its own measured runtime, so the
    // paper lineup is exercised for structure rather than bit-equality.
    let g = ScenarioGrid::builder()
        .module_counts([10])
        .seeds([5, 6])
        .duration_seconds(15)
        .lineups([SchemeLineup::paper()])
        .build()
        .expect("valid grid");
    let report = SweepRunner::new().workers(2).run(&g).expect("sweep");
    assert_eq!(report.cells().len(), 2);
    assert_eq!(report.thermal_solves(), 2 * 15);
    for scheme in ["DNOR", "INOR", "EHTR", "Baseline"] {
        let summary = report.summary(scheme).expect("scheme ran");
        assert_eq!(summary.cells(), 2);
        assert!(summary.mean_net_energy().value() > 0.0);
        assert!(summary.mean_power_ratio() > 0.0);
    }
}
