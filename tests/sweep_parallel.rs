//! Integration tests of the parallel scenario-sweep subsystem: the
//! serial/parallel equivalence guarantee, the one-solve-per-sample cache
//! invariant for any worker count, and the deterministic grid ordering.

use teg_harvest::reconfig::SchemeSpec;
use teg_harvest::sim::{DriveProfile, RuntimePolicy, ScenarioGrid, SchemeLineup, SweepRunner};
use teg_harvest::units::Seconds;

/// A 12-cell grid: 2 module counts × 3 seeds × 1 drive, each sample replayed
/// by two lineups (so 6 distinct scenario samples feed 12 cells).
///
/// The lineups use only schemes whose decisions are pure functions of the
/// telemetry (INOR, EHTR, the baseline), so with a fixed runtime charge the
/// whole sweep is bit-reproducible.
fn grid() -> ScenarioGrid {
    ScenarioGrid::builder()
        .module_counts([6, 9])
        .seeds([1, 2, 3])
        .drives([DriveProfile::named("short", 20)])
        .lineups([
            SchemeLineup::parameterised("inor-vs-baseline", |n| {
                vec![SchemeSpec::inor(), SchemeSpec::baseline_square_grid(n)]
            }),
            SchemeLineup::fixed("heuristics", vec![SchemeSpec::inor(), SchemeSpec::ehtr()]),
        ])
        .build()
        .expect("valid grid")
}

const POLICY: RuntimePolicy = RuntimePolicy::Fixed(Seconds::new(0.002));

#[test]
fn one_worker_and_four_workers_produce_identical_reports() {
    // Two *fresh* grids so each run pays (and proves) its own solves.
    let serial_grid = grid();
    let parallel_grid = grid();
    assert_eq!(serial_grid.len(), 12);

    let serial = SweepRunner::new()
        .workers(1)
        .runtime_policy(POLICY)
        .run(&serial_grid)
        .expect("serial sweep");
    let parallel = SweepRunner::new()
        .workers(4)
        .runtime_policy(POLICY)
        .run(&parallel_grid)
        .expect("parallel sweep");

    // The headline guarantee: identical reports — per-cell records,
    // energies, runtime statistics, summaries, solve counts — regardless of
    // how the pool interleaved the cells.
    assert_eq!(serial, parallel);
}

#[test]
fn thermal_solves_are_one_per_sample_regardless_of_worker_count() {
    for workers in [1, 4] {
        let g = grid();
        // 6 distinct samples × 20 drive seconds; the 12 cells (two lineups
        // per sample, possibly on different workers) share the solves.
        let report = SweepRunner::new()
            .workers(workers)
            .runtime_policy(POLICY)
            .run(&g)
            .expect("sweep");
        assert_eq!(g.expected_thermal_solves(), 6 * 20);
        assert_eq!(
            report.thermal_solves(),
            g.expected_thermal_solves(),
            "trace cache failed with {workers} workers"
        );
        assert_eq!(g.thermal_solve_count(), g.expected_thermal_solves());
    }
}

#[test]
fn cells_are_reported_in_grid_order_with_full_coordinates() {
    let g = grid();
    let report = SweepRunner::new()
        .workers(4)
        .runtime_policy(POLICY)
        .run(&g)
        .expect("sweep");

    assert_eq!(report.cells().len(), 12);
    for (i, cell) in report.cells().iter().enumerate() {
        assert_eq!(cell.key().index(), i);
        assert_eq!(cell.key().drive(), "short");
        // Every cell carries its lineup's full field.
        assert_eq!(cell.report().reports().len(), 2);
    }
    // Lineups alternate fastest; module counts slowest.
    assert_eq!(report.cells()[0].key().lineup(), "inor-vs-baseline");
    assert_eq!(report.cells()[1].key().lineup(), "heuristics");
    assert_eq!(report.cells()[0].key().module_count(), 6);
    assert_eq!(report.cells()[11].key().module_count(), 9);

    // INOR ran in all 12 cells, the baseline and EHTR in 6 each.
    assert_eq!(report.summary("INOR").expect("ran").cells(), 12);
    assert_eq!(report.summary("Baseline").expect("ran").cells(), 6);
    assert_eq!(report.summary("EHTR").expect("ran").cells(), 6);
}

#[test]
fn paper_lineup_sweeps_run_all_four_schemes() {
    // DNOR's switch economics consult its own measured runtime, so the
    // paper lineup is exercised for structure rather than bit-equality.
    let g = ScenarioGrid::builder()
        .module_counts([10])
        .seeds([5, 6])
        .duration_seconds(15)
        .lineups([SchemeLineup::paper()])
        .build()
        .expect("valid grid");
    let report = SweepRunner::new().workers(2).run(&g).expect("sweep");
    assert_eq!(report.cells().len(), 2);
    assert_eq!(report.thermal_solves(), 2 * 15);
    for scheme in ["DNOR", "INOR", "EHTR", "Baseline"] {
        let summary = report.summary(scheme).expect("scheme ran");
        assert_eq!(summary.cells(), 2);
        assert!(summary.mean_net_energy().value() > 0.0);
        assert!(summary.mean_power_ratio() > 0.0);
    }
}
