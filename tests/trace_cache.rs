//! Integration tests of the cross-cell thermal trace cache: sharing must be
//! observationally invisible (bit-identical traces and sweep reports, for
//! any worker count) while collapsing the radiator work of samples with
//! equal thermal inputs to a single solve.

use proptest::prelude::*;
use teg_harvest::sim::{
    FaultProfile, FaultSeverity, RuntimePolicy, Scenario, ScenarioGrid, SchemeLineup, SweepRunner,
    ThermalTrace, TraceCache,
};
use teg_harvest::units::Seconds;

const CHARGE: Seconds = Seconds::new(0.002);
const POLICY: RuntimePolicy = RuntimePolicy::Fixed(CHARGE);

/// A grid whose fault axis triples the samples without touching the
/// radiator inputs: 2 seeds × 3 fault profiles = 6 samples, 2 unique
/// thermal keys.
fn shared_key_grid() -> ScenarioGrid {
    ScenarioGrid::builder()
        .module_counts([8])
        .seeds([1, 2])
        .duration_seconds(15)
        .faults([
            FaultProfile::none(),
            FaultProfile::random("light", FaultSeverity::light()),
            FaultProfile::random("severe", FaultSeverity::severe()),
        ])
        .lineups([SchemeLineup::paper_fixed(CHARGE)])
        .build()
        .expect("valid grid")
}

#[test]
fn cached_sweeps_are_worker_count_independent() {
    let run = |workers: usize| {
        SweepRunner::new()
            .workers(workers)
            .runtime_policy(POLICY)
            .run(&shared_key_grid())
            .expect("sweep")
    };
    let serial = run(1);
    let parallel = run(4);
    // Full-report equality covers every record, summary and the (shared,
    // unique-key) thermal solve count.
    assert_eq!(serial, parallel);
    assert_eq!(parallel.thermal_solves(), 2 * 15);
}

#[test]
fn unique_solve_count_is_pinned_for_a_shared_key_grid() {
    let grid = shared_key_grid();
    assert_eq!(grid.samples().len(), 6);
    assert_eq!(grid.expected_thermal_solves(), 2 * 15);

    let report = SweepRunner::new()
        .workers(3)
        .runtime_policy(POLICY)
        .run(&grid)
        .expect("sweep");
    // Exactly one radiator solve per drive second of each unique key, and
    // the cache accounting agrees: the pre-solve planner takes the 2 misses
    // (one per key) before any cell runs, so all 6 cell lookups are hits
    // (planner-off demand solving would split them 2 misses / 4 hits).
    assert_eq!(report.thermal_solves(), 2 * 15);
    assert_eq!(grid.thermal_solve_count(), 2 * 15);
    let cache = grid.trace_cache().expect("sharing is on by default");
    assert_eq!(cache.len(), 2);
    assert_eq!(cache.misses(), 2);
    assert_eq!(cache.hits(), 6);
}

/// Strict bitwise trace equality — stronger than `PartialEq` (which would
/// accept `-0.0 == 0.0`).
fn assert_traces_bit_identical(fresh: &ThermalTrace, cached: &ThermalTrace) {
    assert_eq!(fresh.len(), cached.len());
    assert_eq!(fresh.width(), cached.width());
    for i in 0..fresh.len() {
        assert_eq!(fresh.time(i), cached.time(i));
        assert_eq!(
            fresh.ambient(i).value().to_bits(),
            cached.ambient(i).value().to_bits()
        );
        for (a, b) in fresh.row(i).iter().zip(cached.row(i)) {
            assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
        }
        for (a, b) in fresh.deltas(i).iter().zip(cached.deltas(i)) {
            assert_eq!(a.kelvin().to_bits(), b.kelvin().to_bits(), "deltas {i}");
        }
        assert_eq!(
            fresh.ideal(i).value().to_bits(),
            cached.ideal(i).value().to_bits(),
            "ideal {i}"
        );
    }
}

proptest! {
    #[test]
    fn cached_traces_are_bitwise_identical_to_fresh_solves(
        modules in 1usize..24,
        seconds in 1usize..40,
        seed in 0u64..u64::MAX,
    ) {
        let build = |cache: Option<TraceCache>| {
            let mut b = Scenario::builder()
                .module_count(modules)
                .duration_seconds(seconds)
                .seed(seed);
            if let Some(cache) = cache {
                b = b.trace_cache(cache);
            }
            b.build().expect("valid scenario")
        };
        let fresh = build(None);
        let cache = TraceCache::new();
        let first = build(Some(cache.clone()));
        let second = build(Some(cache.clone()));
        // Warm the cache through `first`; `second` must then share.
        let first_trace = first.thermal_trace().expect("solve");
        let second_trace = second.thermal_trace().expect("share");
        let fresh_trace = fresh.thermal_trace().expect("solve");
        prop_assert_eq!(cache.misses(), 1);
        prop_assert_eq!(cache.hits(), 1);
        prop_assert_eq!(second.thermal_solve_count(), 0);
        assert_traces_bit_identical(fresh_trace, first_trace);
        assert_traces_bit_identical(fresh_trace, second_trace);
    }
}
